// Property-based / parameterized sweeps across the whole stack: for many
// (shape, density, section, B, L) combinations, every transpose
// implementation — COO mirror, CSC relabeling, Pissanetsky on CSR, HiSM
// software reference, and both simulated kernels — must agree, and STM
// timing invariants must hold.
#include <gtest/gtest.h>

#include "formats/csc.hpp"
#include "formats/csr.hpp"
#include "hism/transpose.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "stm/unit.hpp"
#include "support/bits.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

// ---------------------------------------------------------------------------
// All transpose implementations agree.

struct TransposeCase {
  Index rows;
  Index cols;
  usize nnz;
  u32 section;
  u64 seed;
};

void PrintTo(const TransposeCase& c, std::ostream* os) {
  *os << c.rows << "x" << c.cols << "/" << c.nnz << " s=" << c.section
      << " seed=" << c.seed;
}

class TransposeAgreement : public ::testing::TestWithParam<TransposeCase> {};

TEST_P(TransposeAgreement, AllPathsAgree) {
  const TransposeCase& param = GetParam();
  Rng rng(param.seed);
  const Coo coo = random_coo(param.rows, param.cols, param.nnz, rng);
  const Coo expected = coo.transposed();

  // Host-side references.
  EXPECT_TRUE(coo_equal(Csc::from_coo(coo).transposed_coo(), expected));
  EXPECT_TRUE(coo_equal(Csr::from_coo(coo).transposed_pissanetsky().to_coo(), expected));

  const HismMatrix hism = HismMatrix::from_coo(coo, param.section);
  EXPECT_TRUE(coo_equal(transposed(hism).to_coo(), expected));

  // Simulated kernels.
  vsim::MachineConfig config;
  config.section = param.section;
  const auto hism_result = kernels::run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(hism_result.transposed.to_coo(), expected));
  EXPECT_TRUE(hism_result.transposed.validate());

  const auto crs_result = kernels::run_crs_transpose(Csr::from_coo(coo), config);
  EXPECT_TRUE(coo_equal(crs_result.transposed, expected));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeAgreement,
    ::testing::Values(
        TransposeCase{8, 8, 10, 8, 1}, TransposeCase{16, 16, 60, 8, 2},
        TransposeCase{64, 64, 100, 8, 3}, TransposeCase{64, 64, 1000, 8, 4},
        TransposeCase{65, 64, 900, 8, 5}, TransposeCase{64, 65, 900, 8, 6},
        TransposeCase{200, 40, 800, 8, 7}, TransposeCase{40, 200, 800, 8, 8},
        TransposeCase{513, 513, 2000, 8, 9}, TransposeCase{100, 100, 500, 16, 10},
        TransposeCase{300, 300, 3000, 16, 11}, TransposeCase{1000, 1000, 5000, 32, 12},
        TransposeCase{500, 500, 8000, 64, 13}, TransposeCase{129, 257, 1500, 64, 14},
        TransposeCase{4097, 63, 2000, 64, 15}, TransposeCase{31, 31, 961, 16, 16},
        TransposeCase{77, 77, 1, 8, 17}, TransposeCase{256, 256, 4000, 128, 18},
        TransposeCase{300, 300, 2500, 256, 19}));

// ---------------------------------------------------------------------------
// STM timing properties under parameter sweeps.

struct StmCase {
  u32 section;
  u32 bandwidth;
  u32 lines;
  bool strict;
  u64 seed;
};

void PrintTo(const StmCase& c, std::ostream* os) {
  *os << "s=" << c.section << " B=" << c.bandwidth << " L=" << c.lines
      << (c.strict ? " strict" : " relaxed") << " seed=" << c.seed;
}

class StmProperties : public ::testing::TestWithParam<StmCase> {
 protected:
  std::vector<StmEntry> random_block(u32 section, usize count, u64 seed) {
    Rng rng(seed);
    std::vector<StmEntry> entries;
    for (const u64 cell :
         rng.sample_without_replacement(static_cast<u64>(section) * section, count)) {
      entries.push_back({static_cast<u8>(cell / section), static_cast<u8>(cell % section),
                         static_cast<u32>(cell * 13 + 1)});
    }
    return entries;  // sample is sorted, hence row-major
  }
};

TEST_P(StmProperties, FunctionalTransposeIsExact) {
  const StmCase& param = GetParam();
  StmConfig config{.section = param.section,
                   .bandwidth = param.bandwidth,
                   .lines = param.lines,
                   .strict_consecutive_lines = param.strict};
  StmUnit unit(config);
  const auto entries =
      random_block(param.section, param.section * param.section / 3, param.seed);
  const auto result = unit.transpose_block(entries);

  // Same multiset of payloads, coordinates swapped, output row-major.
  ASSERT_EQ(result.transposed.size(), entries.size());
  std::vector<StmEntry> expected;
  for (const StmEntry& e : entries) expected.push_back({e.col, e.row, e.value_bits});
  std::sort(expected.begin(), expected.end(), [](const StmEntry& a, const StmEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  EXPECT_EQ(result.transposed, expected);
}

TEST_P(StmProperties, CycleBoundsHold) {
  const StmCase& param = GetParam();
  StmConfig config{.section = param.section,
                   .bandwidth = param.bandwidth,
                   .lines = param.lines,
                   .strict_consecutive_lines = param.strict};
  StmUnit unit(config);
  const usize count = param.section * param.section / 4;
  const auto entries = random_block(param.section, count, param.seed + 1);
  const auto result = unit.transpose_block(entries);

  // Each phase moves at most B elements per cycle, at least one per cycle.
  EXPECT_GE(result.write_cycles, ceil_div(count, param.bandwidth));
  EXPECT_LE(result.write_cycles, count);
  EXPECT_GE(result.read_cycles, ceil_div(count, param.bandwidth));
  EXPECT_LE(result.read_cycles, count);
  EXPECT_EQ(result.cycles, result.write_cycles + result.read_cycles + 6u);
}

TEST_P(StmProperties, RelaxedRuleNeverSlower) {
  const StmCase& param = GetParam();
  StmConfig strict{.section = param.section,
                   .bandwidth = param.bandwidth,
                   .lines = param.lines,
                   .strict_consecutive_lines = true};
  StmConfig relaxed = strict;
  relaxed.strict_consecutive_lines = false;
  const auto entries =
      random_block(param.section, param.section * param.section / 5, param.seed + 2);
  StmUnit strict_unit(strict);
  StmUnit relaxed_unit(relaxed);
  EXPECT_LE(relaxed_unit.transpose_block(entries).cycles,
            strict_unit.transpose_block(entries).cycles);
}

TEST_P(StmProperties, MoreLinesNeverSlower) {
  const StmCase& param = GetParam();
  if (param.lines * 2 > param.section) GTEST_SKIP();
  StmConfig narrow{.section = param.section,
                   .bandwidth = param.bandwidth,
                   .lines = param.lines,
                   .strict_consecutive_lines = param.strict};
  StmConfig wide = narrow;
  wide.lines = param.lines * 2;
  const auto entries =
      random_block(param.section, param.section * param.section / 6, param.seed + 3);
  StmUnit narrow_unit(narrow);
  StmUnit wide_unit(wide);
  EXPECT_LE(wide_unit.transpose_block(entries).cycles,
            narrow_unit.transpose_block(entries).cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StmProperties,
    ::testing::Values(StmCase{8, 1, 1, true, 100}, StmCase{8, 2, 2, true, 101},
                      StmCase{8, 4, 4, true, 102}, StmCase{16, 4, 2, true, 103},
                      StmCase{16, 8, 4, false, 104}, StmCase{32, 4, 4, true, 105},
                      StmCase{64, 1, 4, true, 106}, StmCase{64, 2, 1, true, 107},
                      StmCase{64, 4, 4, true, 108}, StmCase{64, 8, 8, true, 109},
                      StmCase{64, 8, 2, false, 110}, StmCase{128, 4, 4, true, 111}));

// ---------------------------------------------------------------------------
// Kernel-vs-kernel agreement on structured patterns.

class PatternCase : public ::testing::TestWithParam<int> {};

TEST_P(PatternCase, KernelsAgreeOnStructuredMatrices) {
  const int pattern = GetParam();
  Coo coo(96, 96);
  switch (pattern) {
    case 0:  // diagonal
      for (Index i = 0; i < 96; ++i) coo.add(i, i, static_cast<float>(i + 1));
      break;
    case 1:  // anti-diagonal
      for (Index i = 0; i < 96; ++i) coo.add(i, 95 - i, static_cast<float>(i + 1));
      break;
    case 2:  // single dense row
      for (Index j = 0; j < 96; ++j) coo.add(17, j, static_cast<float>(j + 1));
      break;
    case 3:  // single dense column
      for (Index i = 0; i < 96; ++i) coo.add(i, 31, static_cast<float>(i + 1));
      break;
    case 4:  // checkerboard
      for (Index i = 0; i < 96; ++i) {
        for (Index j = (i % 2); j < 96; j += 2) coo.add(i, j, 1.0f + static_cast<float>(j));
      }
      break;
    case 5:  // lower triangle band
      for (Index i = 0; i < 96; ++i) {
        for (Index j = i >= 5 ? i - 5 : 0; j <= i; ++j) {
          coo.add(i, j, static_cast<float>(i + j + 1));
        }
      }
      break;
    default:
      FAIL();
  }
  coo.canonicalize();
  const Coo expected = coo.transposed();

  vsim::MachineConfig config;
  config.section = 16;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  EXPECT_TRUE(coo_equal(kernels::run_hism_transpose(hism, config).transposed.to_coo(),
                        expected));
  EXPECT_TRUE(
      coo_equal(kernels::run_crs_transpose(Csr::from_coo(coo), config).transposed, expected));
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternCase, ::testing::Range(0, 6));

}  // namespace
}  // namespace smtu
