#include <gtest/gtest.h>

#include <algorithm>

#include "stm/unit.hpp"
#include "support/rng.hpp"

namespace smtu {
namespace {

StmConfig config(u32 section, u32 bandwidth, u32 lines, bool strict = true) {
  StmConfig cfg;
  cfg.section = section;
  cfg.bandwidth = bandwidth;
  cfg.lines = lines;
  cfg.strict_consecutive_lines = strict;
  return cfg;
}

std::vector<StmEntry> row_major_entries(std::initializer_list<std::pair<u32, u32>> coords) {
  std::vector<StmEntry> entries;
  u32 payload = 1;
  for (const auto& [row, col] : coords) {
    entries.push_back({static_cast<u8>(row), static_cast<u8>(col), payload++});
  }
  return entries;
}

TEST(StmUnit, TransposesSingleBlockFunctionally) {
  StmUnit unit(config(8, 4, 4));
  const auto entries = row_major_entries({{0, 3}, {0, 5}, {2, 0}, {5, 5}, {7, 1}});
  const auto result = unit.transpose_block(entries);
  ASSERT_EQ(result.transposed.size(), 5u);
  // Output is row-major in the transposed coordinates (old column first).
  EXPECT_EQ(result.transposed[0], (StmEntry{0, 2, 3}));
  EXPECT_EQ(result.transposed[1], (StmEntry{1, 7, 5}));
  EXPECT_EQ(result.transposed[2], (StmEntry{3, 0, 1}));
  EXPECT_EQ(result.transposed[3], (StmEntry{5, 0, 2}));
  EXPECT_EQ(result.transposed[4], (StmEntry{5, 5, 4}));
}

TEST(StmUnit, BandwidthOneTakesOneElementPerCycle) {
  StmUnit unit(config(8, 1, 4));
  const auto entries = row_major_entries({{0, 0}, {0, 1}, {1, 0}, {3, 3}, {7, 7}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 5u);
  EXPECT_EQ(result.read_cycles, 5u);
  // Total includes the 3 + 3 pipeline tails — the paper's 6-cycle penalty.
  EXPECT_EQ(result.cycles, 5u + 5u + 6u);
}

TEST(StmUnit, SingleRowFillsBufferToBandwidth) {
  StmUnit unit(config(8, 4, 1));
  const auto entries = row_major_entries(
      {{2, 0}, {2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {2, 6}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 2u);  // ceil(7/4) within one row
}

TEST(StmUnit, StrictLinesOneRowPerCycle) {
  // L = 1: elements of different rows never share a cycle even under B = 4.
  StmUnit unit(config(8, 4, 1));
  const auto entries = row_major_entries({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 4u);
}

TEST(StmUnit, StrictConsecutiveRowsShareACycle) {
  // L = 4 lets four consecutive rows fill one buffer cycle.
  StmUnit unit(config(8, 4, 4));
  const auto entries = row_major_entries({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 1u);
}

TEST(StmUnit, StrictRuleBlocksNonAdjacentRows) {
  // Rows 0 and 6 are not within a 2-line consecutive window.
  StmUnit unit(config(8, 4, 2));
  const auto entries = row_major_entries({{0, 0}, {6, 1}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 2u);
}

TEST(StmUnit, RelaxedRuleAllowsAnyLines) {
  // Ablation A1: with the consecutive-lines restriction lifted, rows 0 and 6
  // share a cycle (any L distinct lines).
  StmUnit unit(config(8, 4, 2, /*strict=*/false));
  const auto entries = row_major_entries({{0, 0}, {6, 1}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 1u);
}

TEST(StmUnit, WindowAnchorsAtFirstPendingRow) {
  // Rows {1,2} fit a 2-line window anchored at 1; row 4 starts a new cycle.
  StmUnit unit(config(8, 4, 2));
  const auto entries = row_major_entries({{1, 0}, {2, 0}, {4, 0}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.write_cycles, 2u);
}

TEST(StmUnit, ReadPhaseGroupsConsecutiveColumns) {
  // Entries occupy columns 0..3, one per column: draining with L = 4, B = 4
  // takes one cycle; with L = 1 it takes four.
  const auto entries = row_major_entries({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  {
    StmUnit unit(config(8, 4, 4));
    EXPECT_EQ(unit.transpose_block(entries).read_cycles, 1u);
  }
  {
    StmUnit unit(config(8, 4, 1));
    EXPECT_EQ(unit.transpose_block(entries).read_cycles, 4u);
  }
}

TEST(StmUnit, EmptyColumnsAreSkippedByDefault) {
  // One element in the last column: the drain must not scan empty columns.
  StmUnit unit(config(64, 1, 1));
  const auto entries = row_major_entries({{0, 63}});
  const auto result = unit.transpose_block(entries);
  EXPECT_EQ(result.read_cycles, 1u);
}

TEST(StmUnit, EmptyColumnsCostCyclesWhenSkippingDisabled) {
  StmConfig cfg = config(64, 1, 4);
  cfg.skip_empty_lines = false;
  StmUnit unit(cfg);
  const auto entries = row_major_entries({{0, 63}});
  const auto result = unit.transpose_block(entries);
  // 16 aligned groups of 4 columns are scanned, one cycle each.
  EXPECT_EQ(result.read_cycles, 16u);
}

TEST(StmUnit, BatchedReadsMatchWholeBlockCycleCount) {
  Rng rng(1);
  std::vector<StmEntry> entries;
  for (const u64 cell : rng.sample_without_replacement(64 * 64, 300)) {
    entries.push_back({static_cast<u8>(cell / 64), static_cast<u8>(cell % 64),
                       static_cast<u32>(cell)});
  }
  std::sort(entries.begin(), entries.end(), [](const StmEntry& a, const StmEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  StmUnit whole(config(64, 4, 4));
  const auto block = whole.transpose_block(entries);

  StmUnit batched(config(64, 4, 4));
  batched.clear();
  batched.write_batch(entries);
  u32 read_cycles = 0;
  std::vector<StmEntry> drained;
  u32 remaining = 300;
  while (remaining > 0) {
    const u32 take = std::min<u32>(64, remaining);
    auto batch = batched.read_batch(take);
    read_cycles += batch.cycles;
    drained.insert(drained.end(), batch.entries.begin(), batch.entries.end());
    remaining -= take;
  }
  EXPECT_EQ(read_cycles, block.read_cycles);
  EXPECT_EQ(drained, block.transposed);
}

TEST(StmUnit, StatsAccumulateAcrossBlocks) {
  StmUnit unit(config(8, 2, 2));
  unit.transpose_block(row_major_entries({{0, 0}, {1, 1}}));
  unit.transpose_block(row_major_entries({{2, 2}}));
  EXPECT_EQ(unit.stats().blocks, 2u);
  EXPECT_EQ(unit.stats().elements_in, 3u);
  EXPECT_EQ(unit.stats().elements_out, 3u);
}

TEST(StmUnit, TransposeOfTransposeRestoresEntries) {
  Rng rng(2);
  std::vector<StmEntry> entries;
  for (const u64 cell : rng.sample_without_replacement(16 * 16, 60)) {
    entries.push_back({static_cast<u8>(cell / 16), static_cast<u8>(cell % 16),
                       static_cast<u32>(cell * 7)});
  }
  std::sort(entries.begin(), entries.end(), [](const StmEntry& a, const StmEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  StmUnit unit(config(16, 4, 4));
  const auto once = unit.transpose_block(entries);
  const auto twice = unit.transpose_block(once.transposed);
  EXPECT_EQ(twice.transposed, entries);
}

TEST(StmUnitDeathTest, DuplicatePositionAborts) {
  StmUnit unit(config(8, 4, 4));
  const auto entries = row_major_entries({{1, 1}, {1, 1}});
  EXPECT_DEATH(unit.transpose_block(entries), "duplicate");
}

TEST(StmUnitDeathTest, OverdrainAborts) {
  StmUnit unit(config(8, 4, 4));
  unit.clear();
  unit.write_batch(row_major_entries({{0, 0}}));
  EXPECT_DEATH(unit.read_batch(2), "more elements");
}

TEST(StmUnitDeathTest, WriteDuringDrainAborts) {
  StmUnit unit(config(8, 4, 4));
  unit.clear();
  unit.write_batch(row_major_entries({{0, 0}, {1, 1}}));
  unit.read_batch(1);
  EXPECT_DEATH(unit.write_batch(row_major_entries({{2, 2}})), "icm");
}

}  // namespace
}  // namespace smtu
