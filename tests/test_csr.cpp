#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

TEST(Csr, RoundTripThroughCoo) {
  Rng rng(1);
  const Coo coo = random_coo(30, 40, 200, rng);
  const Csr csr = Csr::from_coo(coo);
  EXPECT_TRUE(csr.validate());
  EXPECT_TRUE(coo_equal(csr.to_coo(), coo));
}

TEST(Csr, StructureMatchesPaperFigure8) {
  // Fig. 8-style check: row pointers delimit row slices of AN/JA.
  const Coo coo = make_coo(3, 4, {{0, 1, 1.0f}, {0, 3, 2.0f}, {2, 0, 3.0f}});
  const Csr csr = Csr::from_coo(coo);
  ASSERT_EQ(csr.row_ptr().size(), 4u);
  EXPECT_EQ(csr.row_ptr()[0], 0u);
  EXPECT_EQ(csr.row_ptr()[1], 2u);
  EXPECT_EQ(csr.row_ptr()[2], 2u);  // empty row
  EXPECT_EQ(csr.row_ptr()[3], 3u);
  EXPECT_EQ(csr.col_idx()[0], 1u);
  EXPECT_EQ(csr.col_idx()[1], 3u);
  EXPECT_EQ(csr.col_idx()[2], 0u);
}

TEST(Csr, EmptyMatrix) {
  const Csr csr = Csr::from_coo(Coo(5, 5));
  EXPECT_TRUE(csr.validate());
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_EQ(csr.row_ptr().back(), 0u);
}

TEST(Csr, PissanetskyTransposeMatchesReference) {
  Rng rng(2);
  const Coo coo = random_coo(50, 70, 600, rng);
  const Csr transposed = Csr::from_coo(coo).transposed_pissanetsky();
  EXPECT_TRUE(transposed.validate());
  EXPECT_TRUE(coo_equal(transposed.to_coo(), coo.transposed()));
}

TEST(Csr, PissanetskyTransposeRowsAreSorted) {
  // The algorithm fills each output row in source-row order, which yields
  // sorted column indices — a documented property worth pinning down.
  Rng rng(3);
  const Coo coo = random_coo(40, 40, 300, rng);
  const Csr transposed = Csr::from_coo(coo).transposed_pissanetsky();
  EXPECT_TRUE(transposed.validate(/*require_sorted_rows=*/true));
}

TEST(Csr, DoublePissanetskyIsIdentity) {
  Rng rng(4);
  const Coo coo = random_coo(25, 35, 180, rng);
  const Csr twice = Csr::from_coo(coo).transposed_pissanetsky().transposed_pissanetsky();
  EXPECT_TRUE(coo_equal(twice.to_coo(), coo));
}

TEST(Csr, StorageBytes) {
  const Coo coo = make_coo(4, 4, {{0, 0, 1.0f}, {1, 1, 1.0f}, {2, 2, 1.0f}});
  // 3 values (12) + 3 col indices (12) + 5 row pointers (20).
  EXPECT_EQ(Csr::from_coo(coo).storage_bytes(), 44u);
}

TEST(Csr, Spmv) {
  const Coo coo = make_coo(2, 3, {{0, 0, 2.0f}, {0, 2, 1.0f}, {1, 1, 3.0f}});
  const auto y = Csr::from_coo(coo).spmv({1.0f, 2.0f, 4.0f});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(Csr, ValidateRejectsCorruptStructure) {
  Rng rng(5);
  const Csr csr = Csr::from_coo(random_coo(10, 10, 30, rng));
  EXPECT_TRUE(csr.validate());
}

}  // namespace
}  // namespace smtu
