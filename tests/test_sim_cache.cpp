// Host-throughput caching layers: the content-addressed on-disk simulation
// cache (hash keying, need_verified/need_profile miss semantics, merge-on-
// store), the process-wide program cache, the matrix stage cache, and the
// copy-on-write memory snapshots underneath them. The load-bearing property
// throughout is bit-identical replay: a cached result must serialize to
// exactly the bytes the live simulation would have produced.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "formats/coo.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/staging.hpp"
#include "support/json.hpp"
#include "vsim/json_export.hpp"
#include "vsim/memory.hpp"
#include "vsim/program_cache.hpp"
#include "vsim/sim_cache.hpp"

namespace smtu {
namespace {

Coo small_matrix() {
  Coo coo(96, 96);
  for (Index i = 0; i < 96; ++i) {
    coo.add(i, (i * 37 + 5) % 96, static_cast<float>(i) + 0.5f);
    coo.add((i * 13) % 96, i, 1.0f);
  }
  coo.canonicalize();
  return coo;
}

std::string stats_json(const vsim::RunStats& stats) {
  std::ostringstream out;
  JsonWriter json(out);
  vsim::write_run_stats_json(json, stats);
  return out.str();
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_(std::filesystem::temp_directory_path() /
              (std::string("smtu_test_") + tag + "_" +
               std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(SimHash, StableAndSensitive) {
  vsim::SimHash a;
  a.update(std::string_view("hello"));
  a.update_u64(42);
  vsim::SimHash b;
  b.update(std::string_view("hello"));
  b.update_u64(42);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);

  vsim::SimHash c;
  c.update(std::string_view("hello"));
  c.update_u64(43);
  EXPECT_NE(a.hex(), c.hex());
}

TEST(SimCacheKey, DependsOnEveryInput) {
  const vsim::MachineConfig config;
  const std::vector<u8> image = {1, 2, 3, 4};
  const std::string base = vsim::sim_cache_key("prog", config, image, {});

  EXPECT_EQ(base, vsim::sim_cache_key("prog", config, image, {}));
  EXPECT_NE(base, vsim::sim_cache_key("prog2", config, image, {}));

  const std::vector<u8> other_image = {1, 2, 3, 5};
  EXPECT_NE(base, vsim::sim_cache_key("prog", config, other_image, {}));

  vsim::MachineConfig other_config;
  other_config.mem_startup += 1;
  EXPECT_NE(base, vsim::sim_cache_key("prog", other_config, image, {}));

  const std::pair<u32, u64> sreg{1, 0x10000};
  EXPECT_NE(base, vsim::sim_cache_key("prog", config, image, {&sreg, 1}));
}

TEST(SimCache, RoundTripIsByteIdentical) {
  TempDir dir("simcache_roundtrip");
  vsim::SimCache cache(dir.str());

  const auto stage = kernels::build_hism_stage(HismMatrix::from_coo(small_matrix(), 64));
  const vsim::MachineConfig config;
  const vsim::RunStats live = kernels::time_hism_transpose(stage, config);

  const std::string key = vsim::sim_cache_key(kernels::hism_transpose_source(), config,
                                              *stage.snapshot, {});
  EXPECT_FALSE(cache.lookup(key, false, false).has_value());
  cache.store(key, {live, /*verified=*/false, /*profile_json=*/""});

  const auto hit = cache.lookup(key, false, false);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(stats_json(hit->stats), stats_json(live));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);

  // A second cache object on the same directory sees the entry (the cache
  // is the directory, not the process).
  vsim::SimCache reopened(dir.str());
  const auto persisted = reopened.lookup(key, false, false);
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(stats_json(persisted->stats), stats_json(live));
}

TEST(SimCache, ProfiledReplayMatchesLiveRender) {
  TempDir dir("simcache_profile");
  vsim::SimCache cache(dir.str());

  const auto stage = kernels::build_crs_stage(Csr::from_coo(small_matrix()));
  const vsim::MachineConfig config;
  vsim::PerfCounters counters;
  const vsim::RunStats live = kernels::time_crs_transpose(stage, config, {}, &counters);

  std::ostringstream rendered;
  JsonWriter json(rendered);
  vsim::write_profile_json(json, counters);

  const std::string key = vsim::sim_cache_key(
      kernels::crs_transpose_source(config.section, {}), config, *stage.snapshot, {});
  cache.store(key, {live, false, rendered.str()});

  const auto hit = cache.lookup(key, false, /*need_profile=*/true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->profile_json, rendered.str());
  EXPECT_EQ(stats_json(hit->stats), stats_json(live));
}

TEST(SimCache, NeedFlagsTurnInsufficientEntriesIntoMisses) {
  TempDir dir("simcache_needs");
  vsim::SimCache cache(dir.str());

  vsim::RunStats stats;
  stats.cycles = 123;
  cache.store("deadbeefdeadbeefdeadbeefdeadbeef", {stats, /*verified=*/false, ""});

  EXPECT_TRUE(cache.lookup("deadbeefdeadbeefdeadbeefdeadbeef", false, false).has_value());
  EXPECT_FALSE(cache.lookup("deadbeefdeadbeefdeadbeefdeadbeef", true, false).has_value());
  EXPECT_FALSE(cache.lookup("deadbeefdeadbeefdeadbeefdeadbeef", false, true).has_value());
}

TEST(SimCache, StoreUpgradesButNeverDowngrades) {
  TempDir dir("simcache_merge");
  vsim::SimCache cache(dir.str());
  const std::string key = "0123456789abcdef0123456789abcdef";

  vsim::RunStats stats;
  stats.cycles = 7;
  cache.store(key, {stats, /*verified=*/true, "{\"p\":1}"});
  // An unverified, unprofiled store of the same result must not erase the
  // richer facts already on disk.
  cache.store(key, {stats, /*verified=*/false, ""});

  const auto entry = cache.lookup(key, /*need_verified=*/true, /*need_profile=*/true);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->verified);
  EXPECT_EQ(entry->profile_json, "{\"p\":1}");
}

TEST(ProgramCache, SharesOnePredecodedProgram) {
  const std::string source = kernels::hism_transpose_source();
  const auto first = vsim::ProgramCache::instance().get(source);
  const auto second = vsim::ProgramCache::instance().get(source);
  EXPECT_EQ(first.get(), second.get());
  // Predecode happened at assembly, once.
  EXPECT_EQ(first->decoded.size(), first->instructions.size());
}

TEST(MatrixStageCache, SharesOneStagePerMatrix) {
  const Coo coo = small_matrix();
  auto& cache = kernels::MatrixStageCache::instance();
  const auto first = cache.hism(coo, 64);
  const auto second = cache.hism(coo, 64);
  EXPECT_EQ(first.get(), second.get());
  // A different section stages a different image.
  EXPECT_NE(first.get(), cache.hism(coo, 32).get());
  EXPECT_EQ(cache.crs(coo).get(), cache.crs(coo).get());
}

TEST(StagedKernels, MatchUnstagedBitForBit) {
  const Coo coo = small_matrix();
  const vsim::MachineConfig config;

  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const auto hism_stage = kernels::build_hism_stage(hism);
  EXPECT_EQ(stats_json(kernels::time_hism_transpose(hism, config)),
            stats_json(kernels::time_hism_transpose(hism_stage, config)));

  const Csr csr = Csr::from_coo(coo);
  const auto crs_stage = kernels::build_crs_stage(csr);
  EXPECT_EQ(stats_json(kernels::time_crs_transpose(csr, config)),
            stats_json(kernels::time_crs_transpose(crs_stage, config)));

  // Results (not just timing) decode identically through the snapshot.
  const auto direct = kernels::run_crs_transpose(csr, config);
  const auto staged = kernels::run_crs_transpose(crs_stage, config);
  EXPECT_TRUE(structurally_equal(direct.transposed, staged.transposed));
}

TEST(MemoryCow, SnapshotReadsAndPrivatizeOnWrite) {
  auto base = std::make_shared<std::vector<u8>>(4096, u8{0});
  (*base)[100] = 0xAB;
  (*base)[101] = 0xCD;

  vsim::Memory memory;
  memory.attach_base(base);
  EXPECT_EQ(memory.size(), 4096u);
  EXPECT_EQ(memory.read_u8(100), 0xAB);
  EXPECT_EQ(memory.read_u16(100), 0xCDAB);  // little-endian
  EXPECT_EQ(memory.raw().data(), base->data());

  // First write copies; the shared snapshot stays untouched.
  memory.write_u8(100, 0xFF);
  EXPECT_EQ(memory.read_u8(100), 0xFF);
  EXPECT_EQ((*base)[100], 0xAB);
  EXPECT_NE(memory.raw().data(), base->data());
  EXPECT_EQ(memory.read_u8(101), 0xCD);  // copied content preserved
}

}  // namespace
}  // namespace smtu
