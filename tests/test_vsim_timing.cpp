// Timing-model tests pinning the paper's §IV-A machine parameters:
//   * contiguous 64-word vector load: 20 + 64/4 = 36 cycles,
//   * indexed 64-element load: 20 + 64 = 84 cycles,
//   * chaining overlaps dependent vector instructions,
//   * the vector memory unit serializes concurrent streams.
#include <gtest/gtest.h>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu::vsim {
namespace {

Cycle cycles_of(const std::string& source, const MachineConfig& config = {}) {
  Machine machine(config);
  machine.memory().ensure(0, 1 << 20);
  return machine.run(assemble(source)).cycles;
}

// The setup li/ssvl instructions issue in the first couple of cycles, so
// vector-op formulas below hold within a small constant.
constexpr Cycle kSetupSlack = 4;

TEST(Timing, ContiguousLoadMatchesPaperFormula) {
  const Cycle cycles = cycles_of(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_ld vr1, (r2)\n"
      "halt\n");
  // 20-cycle startup + 64 words at 4 words/cycle = 36.
  EXPECT_GE(cycles, 36u);
  EXPECT_LE(cycles, 36u + kSetupSlack);
}

TEST(Timing, IndexedLoadMatchesPaperFormula) {
  const Cycle cycles = cycles_of(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_bcasti vr0, 0\n"
      "v_ldx vr1, (r2), vr0\n"
      "halt\n");
  // 20 + 64 = 84, after the broadcast producing the index vector.
  EXPECT_GE(cycles, 84u);
  EXPECT_LE(cycles, 84u + kSetupSlack + 20u);  // + broadcast + chain-in
}

TEST(Timing, IndexedCostsMoreThanContiguous) {
  const Cycle contiguous = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\nhalt\n");
  const Cycle indexed = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_bcasti vr0, 0\nv_ldx vr1, (r2), vr0\nhalt\n");
  EXPECT_GT(indexed, contiguous + 40);
}

TEST(Timing, MemoryUnitSerializesTransfers) {
  const std::string one_load =
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\nhalt\n";
  const std::string two_loads =
      "li r1, 64\nssvl r1\nli r2, 0x1000\nli r3, 0x2000\n"
      "v_ld vr1, (r2)\nv_ld vr2, (r3)\nhalt\n";

  // Pipelined startup (the default): the second load overlaps the first
  // one's 20-cycle startup but still queues behind its 16 transfer slots.
  const Cycle one = cycles_of(one_load);
  const Cycle two = cycles_of(two_loads);
  EXPECT_GE(two, one + 16);
  EXPECT_LT(two, one + 36);

  // Non-pipelined ablation: each access pays the full startup exclusively.
  MachineConfig unpipelined;
  unpipelined.mem_pipelined_startup = false;
  EXPECT_GE(cycles_of(two_loads, unpipelined), cycles_of(one_load, unpipelined) + 30);
}

TEST(Timing, VectorAluRunsAtLaneRate) {
  const Cycle short_vec = cycles_of(
      "li r1, 8\nssvl r1\nv_iota vr1\nv_add vr2, vr1, vr1\nhalt\n");
  const Cycle long_vec = cycles_of(
      "li r1, 64\nssvl r1\nv_iota vr1\nv_add vr2, vr1, vr1\nhalt\n");
  // 64 vs 8 elements at 4 lanes: ~14 cycles more work per instruction, but
  // chaining overlaps the two ops, so expect a clear yet sub-28 gap.
  EXPECT_GT(long_vec, short_vec + 8);
  EXPECT_LT(long_vec, short_vec + 40);
}

TEST(Timing, ChainingOverlapsDependentOps) {
  const std::string source =
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x2000\n"
      "v_ld vr1, (r2)\n"
      "v_addi vr2, vr1, 1\n"
      "v_st vr2, (r3)\n"
      "halt\n";
  MachineConfig chained;
  chained.chaining = true;
  MachineConfig unchained;
  unchained.chaining = false;
  const Cycle with_chaining = cycles_of(source, chained);
  const Cycle without_chaining = cycles_of(source, unchained);
  EXPECT_LT(with_chaining, without_chaining);
  // Without chaining the three ops serialize: ~36 + ~18 + ~36.
  EXPECT_GE(without_chaining, 80u);
}

TEST(Timing, WarHazardDelaysOverwrite) {
  // v_st reads vr1 while the second v_ld wants to overwrite it: the second
  // load must wait (write-after-read), making the two-buffer version with
  // distinct registers no slower.
  const Cycle reuse = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nli r3, 0x2000\n"
      "v_ld vr1, (r2)\nv_st vr1, (r3)\nv_ld vr1, 256(r2)\nv_st vr1, 256(r3)\nhalt\n");
  const Cycle distinct = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nli r3, 0x2000\n"
      "v_ld vr1, (r2)\nv_st vr1, (r3)\nv_ld vr2, 256(r2)\nv_st vr2, 256(r3)\nhalt\n");
  EXPECT_GE(reuse, distinct);
}

TEST(Timing, ScalarLoopOverheadIsSmallPerVectorOp) {
  // A strip-mined vector loop's scalar bookkeeping (4-wide issue) should
  // not dominate: 4 strips of contiguous load ~ 4 * 36 plus small overhead.
  const Cycle cycles = cycles_of(
      "li r1, 256\n"
      "li r2, 0x1000\n"
      "loop:\n"
      "ssvl r1\n"
      "v_ld vr1, (r2)\n"
      "addi r2, r2, 256\n"
      "bne r1, r0, loop\n"
      "halt\n");
  EXPECT_GE(cycles, 4 * 36u);
  EXPECT_LE(cycles, 4 * 36u + 40u);
}

TEST(Timing, StmBlockPaysSixCyclePipelinePenalty) {
  // One element through the STM: fill (3) + 1 + drain (3) + 1 plus icm and
  // memory traffic; the penalty shows up as > 8 STM-attributed cycles.
  Machine machine{MachineConfig{}};
  machine.memory().write_u8(0x1000, 1);
  machine.memory().write_u8(0x1001, 2);
  machine.memory().write_u32(0x1004, 42);
  const RunStats stats = machine.run(assemble(
      "li r1, 1\nssvl r1\nicm\n"
      "li r2, 0x1000\nli r3, 0x1004\n"
      "v_ldb vr1, vr2, r2, r3\n"
      "v_stcr vr1, vr2\n"
      "li r3, 0x1004\nli r2, 0x1000\nli r1, 1\nssvl r1\n"
      "v_ldcc vr1, vr2\n"
      "v_stb vr1, vr2, r2, r3\n"
      "halt\n"));
  EXPECT_EQ(stats.stm_blocks, 1u);
  EXPECT_EQ(stats.stm_write_cycles, 1u);
  EXPECT_EQ(stats.stm_read_cycles, 1u);
}

TEST(Timing, BranchPenaltyChargesTakenBranches) {
  MachineConfig no_penalty;
  no_penalty.branch_penalty = 0;
  MachineConfig heavy;
  heavy.branch_penalty = 10;
  const std::string source =
      "li r1, 50\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n";
  EXPECT_GT(cycles_of(source, heavy), cycles_of(source, no_penalty) + 49 * 8);
}

TEST(Timing, StatsCountInstructionClasses) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 0x4000);
  const RunStats stats = machine.run(assemble(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\nv_addi vr2, vr1, 1\nhalt\n"));
  EXPECT_EQ(stats.vector_instructions, 2u);
  EXPECT_EQ(stats.scalar_instructions, 4u);
  EXPECT_EQ(stats.mem_contiguous_bytes, 256u);
  EXPECT_EQ(stats.vector_elements, 128u);
}

}  // namespace
}  // namespace smtu::vsim
