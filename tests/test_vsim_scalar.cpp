// Functional tests of the scalar side of the simulated machine: arithmetic,
// memory, control flow, and a recursive program with a stack in simulated
// memory (the pattern the HiSM kernel relies on).
#include <gtest/gtest.h>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu::vsim {
namespace {

u64 run_and_get(const std::string& source, u32 result_reg,
                const std::vector<std::pair<u32, u64>>& inputs = {}) {
  Machine machine{MachineConfig{}};
  for (const auto& [reg, value] : inputs) machine.set_sreg(reg, value);
  machine.run(assemble(source));
  return machine.sreg(result_reg);
}

TEST(ScalarExec, Arithmetic) {
  EXPECT_EQ(run_and_get("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n", 3), 42u);
  EXPECT_EQ(run_and_get("li r1, 10\naddi r2, r1, -3\nhalt\n", 2), 7u);
  EXPECT_EQ(run_and_get("li r1, 0xf0\nli r2, 0x0f\nor r3, r1, r2\nhalt\n", 3), 0xffu);
  EXPECT_EQ(run_and_get("li r1, 0xff\nandi r2, r1, 0x0f\nhalt\n", 2), 0x0fu);
  EXPECT_EQ(run_and_get("li r1, 5\nslli r2, r1, 3\nhalt\n", 2), 40u);
  EXPECT_EQ(run_and_get("li r1, 40\nsrli r2, r1, 3\nhalt\n", 2), 5u);
  EXPECT_EQ(run_and_get("li r1, 9\nli r2, 4\nmin r3, r1, r2\nmax r4, r1, r2\nhalt\n", 3), 4u);
}

TEST(ScalarExec, RegisterZeroIsHardwired) {
  EXPECT_EQ(run_and_get("li r0, 99\nmv r1, r0\nhalt\n", 1), 0u);
}

TEST(ScalarExec, LoadStoreWidths) {
  Machine machine{MachineConfig{}};
  machine.run(assemble(
      "li r1, 0x1000\n"
      "li r2, 0x11223344\n"
      "sw r2, (r1)\n"
      "lw r3, (r1)\n"
      "lhu r4, (r1)\n"
      "lbu r5, 3(r1)\n"
      "sh r2, 8(r1)\n"
      "lhu r6, 8(r1)\n"
      "sb r2, 12(r1)\n"
      "lbu r7, 12(r1)\n"
      "halt\n"));
  EXPECT_EQ(machine.sreg(3), 0x11223344u);
  EXPECT_EQ(machine.sreg(4), 0x3344u);
  EXPECT_EQ(machine.sreg(5), 0x11u);
  EXPECT_EQ(machine.sreg(6), 0x3344u);
  EXPECT_EQ(machine.sreg(7), 0x44u);
}

TEST(ScalarExec, LoopComputesSum) {
  // sum of 1..10
  const u64 result = run_and_get(
      "li r1, 10\n"
      "li r2, 0\n"
      "loop: add r2, r2, r1\n"
      "addi r1, r1, -1\n"
      "bne r1, r0, loop\n"
      "halt\n",
      2);
  EXPECT_EQ(result, 55u);
}

TEST(ScalarExec, SignedBranches) {
  // blt is signed: -1 < 1.
  const u64 result = run_and_get(
      "li r1, -1\n"
      "li r2, 1\n"
      "li r3, 0\n"
      "blt r1, r2, yes\n"
      "beq r0, r0, end\n"
      "yes: li r3, 1\n"
      "end: halt\n",
      3);
  EXPECT_EQ(result, 1u);
}

TEST(ScalarExec, CallAndReturn) {
  const u64 result = run_and_get(
      "li r1, 5\n"
      "call double_it\n"
      "halt\n"
      "double_it: add r1, r1, r1\n"
      "ret\n",
      1);
  EXPECT_EQ(result, 10u);
}

TEST(ScalarExec, RecursiveFactorialWithStack) {
  // factorial(6) via real recursion with a memory stack — exercises the
  // same call/stack pattern as the HiSM transpose kernel.
  const u64 result = run_and_get(
      "li sp, 0x8000\n"
      "li r1, 6\n"
      "call fact\n"
      "halt\n"
      "fact:\n"
      "  bne r1, r0, recurse\n"
      "  li r2, 1\n"
      "  ret\n"
      "recurse:\n"
      "  addi sp, sp, -8\n"
      "  sw ra, (sp)\n"
      "  sw r1, 4(sp)\n"
      "  addi r1, r1, -1\n"
      "  call fact\n"
      "  lw ra, (sp)\n"
      "  lw r1, 4(sp)\n"
      "  addi sp, sp, 8\n"
      "  mul r2, r2, r1\n"
      "  ret\n",
      2);
  EXPECT_EQ(result, 720u);
}

TEST(ScalarExec, CyclesAdvanceMonotonically) {
  Machine machine{MachineConfig{}};
  const RunStats one = machine.run(assemble("li r1, 1\nhalt\n"));
  const RunStats many = machine.run(assemble(
      "li r1, 100\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n"));
  EXPECT_GT(many.cycles, one.cycles);
  EXPECT_EQ(many.instructions, 202u);
}

TEST(ScalarExec, IssueWidthBoundsCycles) {
  // 40 independent li instructions on a 4-wide core: at least 10 cycles,
  // and far fewer than 40.
  std::string source;
  for (int i = 1; i <= 20; ++i) {
    source += "li r" + std::to_string(i % 29 + 1) + ", " + std::to_string(i) + "\n";
    source += "li r" + std::to_string((i + 7) % 29 + 1) + ", " + std::to_string(i) + "\n";
  }
  source += "halt\n";
  Machine machine{MachineConfig{}};
  const RunStats stats = machine.run(assemble(source));
  EXPECT_GE(stats.cycles, 10u);
  EXPECT_LE(stats.cycles, 25u);
}

TEST(ScalarExec, LoadLatencyStallsDependents) {
  MachineConfig fast;
  fast.scalar_load_latency = 1;
  MachineConfig slow;
  slow.scalar_load_latency = 30;
  const std::string source =
      "li r1, 0x100\n"
      "sw r1, (r1)\n"
      "lw r2, (r1)\n"
      "addi r3, r2, 1\n"  // depends on the load
      "halt\n";
  Machine machine_fast(fast);
  Machine machine_slow(slow);
  const RunStats a = machine_fast.run(assemble(source));
  const RunStats b = machine_slow.run(assemble(source));
  EXPECT_GT(b.cycles, a.cycles + 20);
}

TEST(ScalarExecDeathTest, RunawayProgramAborts) {
  MachineConfig config;
  config.max_instructions = 1000;
  Machine machine(config);
  EXPECT_DEATH(machine.run(assemble("loop: beq r0, r0, loop\nhalt\n")), "budget");
}

TEST(ScalarExecDeathTest, FallingOffTheEndAborts) {
  Machine machine{MachineConfig{}};
  EXPECT_DEATH(machine.run(assemble("li r1, 1\n")), "missing halt");
}

}  // namespace
}  // namespace smtu::vsim
