#include <gtest/gtest.h>

#include "formats/bcsr.hpp"
#include "formats/cds.hpp"
#include "formats/csr.hpp"
#include "suite/generators.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

// ---------------------------------------------------------------- CDS ----

TEST(Cds, RoundTripTridiagonal) {
  Rng rng(1);
  const Coo coo = suite::gen_tridiagonal(50, rng);
  const Cds cds = Cds::from_coo(coo);
  EXPECT_TRUE(cds.validate());
  EXPECT_EQ(cds.num_diagonals(), 3u);
  EXPECT_TRUE(coo_equal(cds.to_coo(), coo));
}

TEST(Cds, OffsetsAreSortedAndComplete) {
  const Coo coo = make_coo(6, 6, {{0, 5, 1.0f}, {5, 0, 2.0f}, {2, 2, 3.0f}});
  const Cds cds = Cds::from_coo(coo);
  ASSERT_EQ(cds.offsets().size(), 3u);
  EXPECT_EQ(cds.offsets()[0], -5);
  EXPECT_EQ(cds.offsets()[1], 0);
  EXPECT_EQ(cds.offsets()[2], 5);
}

TEST(Cds, FillRatioDegradesOnScatteredMatrices) {
  Rng rng(2);
  const Cds banded = Cds::from_coo(suite::gen_tridiagonal(100, rng));
  const Cds scattered = Cds::from_coo(suite::gen_random_uniform(100, 100, 100, rng));
  EXPECT_LT(banded.fill_ratio(), 1.5);
  EXPECT_GT(scattered.fill_ratio(), 10.0);  // many near-empty diagonals
}

TEST(Cds, SpmvMatchesCsr) {
  Rng rng(3);
  const Coo coo = suite::gen_banded_rows(80, 5, 10, rng);
  std::vector<float> x(80);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto y_cds = Cds::from_coo(coo).spmv(x);
  const auto y_csr = Csr::from_coo(coo).spmv(x);
  for (usize i = 0; i < 80; ++i) EXPECT_NEAR(y_cds[i], y_csr[i], 1e-4f);
}

TEST(Cds, RectangularMatrix) {
  Rng rng(4);
  const Coo coo = random_coo(20, 35, 80, rng);
  const Cds cds = Cds::from_coo(coo);
  EXPECT_TRUE(cds.validate());
  EXPECT_TRUE(coo_equal(cds.to_coo(), coo));
}

TEST(Cds, EmptyMatrix) {
  const Cds cds = Cds::from_coo(Coo(8, 8));
  EXPECT_TRUE(cds.validate());
  EXPECT_EQ(cds.num_diagonals(), 0u);
  EXPECT_EQ(cds.fill_ratio(), 0.0);
}

// --------------------------------------------------------------- BCSR ----

TEST(Bcsr, RoundTripRandom) {
  Rng rng(5);
  const Coo coo = random_coo(60, 90, 400, rng);
  const Bcsr bcsr = Bcsr::from_coo(coo, 4, 4);
  EXPECT_TRUE(bcsr.validate());
  EXPECT_TRUE(coo_equal(bcsr.to_coo(), coo));
}

TEST(Bcsr, RoundTripNonSquareTiles) {
  Rng rng(6);
  const Coo coo = random_coo(50, 50, 300, rng);
  const Bcsr bcsr = Bcsr::from_coo(coo, 2, 8);
  EXPECT_TRUE(bcsr.validate());
  EXPECT_TRUE(coo_equal(bcsr.to_coo(), coo));
}

TEST(Bcsr, DimensionsNotMultipleOfTile) {
  Rng rng(7);
  const Coo coo = random_coo(19, 23, 120, rng);
  const Bcsr bcsr = Bcsr::from_coo(coo, 4, 4);
  EXPECT_TRUE(bcsr.validate());
  EXPECT_TRUE(coo_equal(bcsr.to_coo(), coo));
}

TEST(Bcsr, FillRatioOnClusteredVsScattered) {
  Rng rng(8);
  const Coo clustered = suite::gen_block_clusters(512, 20, 900, rng);
  const Coo scattered = suite::gen_random_uniform(512, 512, 600, rng);
  EXPECT_LT(Bcsr::from_coo(clustered, 8, 8).fill_ratio(), 1.5);
  EXPECT_GT(Bcsr::from_coo(scattered, 8, 8).fill_ratio(), 20.0);
}

TEST(Bcsr, TransposeMatchesReference) {
  Rng rng(9);
  const Coo coo = random_coo(70, 40, 500, rng);
  const Bcsr transposed = Bcsr::from_coo(coo, 4, 8).transposed();
  EXPECT_TRUE(transposed.validate());
  EXPECT_EQ(transposed.block_rows(), 8u);
  EXPECT_EQ(transposed.block_cols(), 4u);
  EXPECT_TRUE(coo_equal(transposed.to_coo(), coo.transposed()));
}

TEST(Bcsr, SpmvMatchesCsr) {
  Rng rng(10);
  const Coo coo = random_coo(64, 64, 500, rng);
  std::vector<float> x(64);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto y_bcsr = Bcsr::from_coo(coo, 4, 4).spmv(x);
  const auto y_csr = Csr::from_coo(coo).spmv(x);
  for (usize i = 0; i < 64; ++i) EXPECT_NEAR(y_bcsr[i], y_csr[i], 1e-4f);
}

TEST(Bcsr, EmptyMatrix) {
  const Bcsr bcsr = Bcsr::from_coo(Coo(16, 16), 4, 4);
  EXPECT_TRUE(bcsr.validate());
  EXPECT_EQ(bcsr.num_blocks(), 0u);
}

TEST(Bcsr, StorageComparesAgainstCsr) {
  // On dense-block matrices BCSR stores fewer index bytes than CSR.
  Rng rng(11);
  const Coo clustered = suite::gen_block_clusters(512, 30, 1000, rng);
  const Bcsr bcsr = Bcsr::from_coo(clustered, 8, 8);
  const Csr csr = Csr::from_coo(clustered);
  // values dominate both; BCSR's per-tile index is tiny.
  EXPECT_LT(bcsr.storage_bytes(), 2 * csr.storage_bytes());
}

}  // namespace
}  // namespace smtu
