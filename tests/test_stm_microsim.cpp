// Cross-validation of the two independent STM timing implementations: the
// schedule-based engine (stm/unit.cpp) and the cycle-by-cycle
// micro-simulation driving the Non-zero Locator circuit (stm/microsim.cpp).
// They must agree bit-exactly on drain order and cycle counts across the
// whole (B, L, strict/relaxed, density) parameter space.
#include <gtest/gtest.h>

#include <algorithm>

#include "stm/microsim.hpp"
#include "stm/unit.hpp"
#include "support/rng.hpp"

namespace smtu {
namespace {

std::vector<StmEntry> random_block(u32 section, usize count, u64 seed) {
  Rng rng(seed);
  std::vector<StmEntry> entries;
  for (const u64 cell :
       rng.sample_without_replacement(static_cast<u64>(section) * section, count)) {
    entries.push_back({static_cast<u8>(cell / section), static_cast<u8>(cell % section),
                       static_cast<u32>(cell * 31 + 7)});
  }
  return entries;  // sorted row-major
}

struct MicrosimCase {
  u32 section;
  u32 bandwidth;
  u32 lines;
  bool strict;
  double density;
  u64 seed;
};

void PrintTo(const MicrosimCase& c, std::ostream* os) {
  *os << "s=" << c.section << " B=" << c.bandwidth << " L=" << c.lines
      << (c.strict ? " strict" : " relaxed") << " d=" << c.density << " seed=" << c.seed;
}

class MicrosimEquivalence : public ::testing::TestWithParam<MicrosimCase> {};

TEST_P(MicrosimEquivalence, DrainMatchesScheduleEngine) {
  const MicrosimCase& param = GetParam();
  StmConfig config;
  config.section = param.section;
  config.bandwidth = param.bandwidth;
  config.lines = param.lines;
  config.strict_consecutive_lines = param.strict;

  const usize count = static_cast<usize>(
      param.density * static_cast<double>(param.section) * param.section);
  const auto entries = random_block(param.section, std::max<usize>(1, count), param.seed);

  StmUnit unit(config);
  const StmUnit::BlockResult engine = unit.transpose_block(entries);
  const MicrosimResult micro = microsim_drain(entries, config);

  EXPECT_EQ(micro.cycles, engine.read_cycles);
  EXPECT_EQ(micro.drained, engine.transposed);
}

TEST_P(MicrosimEquivalence, FillMatchesScheduleEngine) {
  const MicrosimCase& param = GetParam();
  StmConfig config;
  config.section = param.section;
  config.bandwidth = param.bandwidth;
  config.lines = param.lines;
  config.strict_consecutive_lines = param.strict;

  const usize count = static_cast<usize>(
      param.density * static_cast<double>(param.section) * param.section);
  const auto entries = random_block(param.section, std::max<usize>(1, count), param.seed + 1);

  StmUnit unit(config);
  const StmUnit::BlockResult engine = unit.transpose_block(entries);
  EXPECT_EQ(microsim_fill_cycles(entries, config), engine.write_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MicrosimEquivalence,
    ::testing::Values(MicrosimCase{8, 1, 1, true, 0.3, 1},
                      MicrosimCase{8, 4, 4, true, 0.3, 2},
                      MicrosimCase{8, 4, 2, false, 0.5, 3},
                      MicrosimCase{16, 2, 4, true, 0.1, 4},
                      MicrosimCase{16, 8, 8, true, 0.9, 5},
                      MicrosimCase{32, 4, 1, true, 0.05, 6},
                      MicrosimCase{32, 4, 4, false, 0.2, 7},
                      MicrosimCase{64, 1, 4, true, 0.02, 8},
                      MicrosimCase{64, 4, 4, true, 0.02, 9},
                      MicrosimCase{64, 4, 4, true, 0.6, 10},
                      MicrosimCase{64, 8, 2, false, 0.15, 11},
                      MicrosimCase{128, 4, 8, true, 0.01, 12}));

TEST(Microsim, UnsortedFillStreamStillAgrees) {
  // Fill order is whatever the block-array holds; scramble it.
  StmConfig config;
  config.section = 16;
  config.bandwidth = 4;
  config.lines = 2;
  auto entries = random_block(16, 60, 99);
  Rng rng(123);
  rng.shuffle(entries);

  StmUnit unit(config);
  unit.clear();
  const u32 engine_cycles = unit.write_batch(entries);
  EXPECT_EQ(microsim_fill_cycles(entries, config), engine_cycles);
}

TEST(MicrosimDeathTest, RejectsNoSummaryVariant) {
  StmConfig config;
  config.skip_empty_lines = false;
  const auto entries = random_block(8, 4, 7);
  EXPECT_DEATH(microsim_drain(entries, config), "occupancy-summary");
}

}  // namespace
}  // namespace smtu
