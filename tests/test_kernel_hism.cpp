// Integration tests: the recursive HiSM transpose kernel (Fig. 6/7) running
// on the simulated vector processor with the STM functional unit. Every run
// is verified by decoding the in-place image back from simulated memory and
// comparing against the pure-C++ reference transpose.
#include <gtest/gtest.h>

#include <iomanip>

#include "hism/hism.hpp"
#include "hism/transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/layout.hpp"
#include "testing.hpp"
#include "vsim/assembler.hpp"
#include "vsim/config.hpp"

namespace smtu {
namespace {

using kernels::HismTransposeResult;
using kernels::run_hism_transpose;
using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

vsim::MachineConfig config_with_section(u32 section) {
  vsim::MachineConfig config;
  config.section = section;
  return config;
}

TEST(HismKernel, SingleBlockMatrix) {
  const Coo coo = make_coo(8, 8,
                           {{0, 3, 1.0f}, {0, 5, 2.0f}, {2, 0, 3.0f}, {5, 5, 4.0f},
                            {7, 1, 5.0f}, {7, 7, 6.0f}});
  const vsim::MachineConfig config = config_with_section(8);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  ASSERT_EQ(hism.num_levels(), 1u);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
  EXPECT_TRUE(result.transposed.validate());
  EXPECT_GT(result.stats.cycles, 0u);
  EXPECT_EQ(result.stats.stm_blocks, 1u);
}

TEST(HismKernel, TwoLevelMatrix) {
  Rng rng(42);
  const Coo coo = random_coo(40, 40, 120, rng);
  const vsim::MachineConfig config = config_with_section(8);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  ASSERT_EQ(hism.num_levels(), 2u);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
  // One block per level-0 array plus two passes over each level>=1 block.
  EXPECT_GE(result.stats.stm_blocks, hism.level(0).size());
}

TEST(HismKernel, ThreeLevelMatrix) {
  Rng rng(7);
  const Coo coo = random_coo(300, 300, 500, rng);
  const vsim::MachineConfig config = config_with_section(8);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  ASSERT_EQ(hism.num_levels(), 3u);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
}

TEST(HismKernel, RectangularMatrix) {
  Rng rng(11);
  const Coo coo = random_coo(50, 200, 300, rng);
  const vsim::MachineConfig config = config_with_section(16);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  const Coo transposed = result.transposed.to_coo();
  EXPECT_EQ(transposed.rows(), 200u);
  EXPECT_EQ(transposed.cols(), 50u);
  EXPECT_TRUE(coo_equal(transposed, coo.transposed()));
}

TEST(HismKernel, DefaultSection64) {
  Rng rng(99);
  const Coo coo = random_coo(500, 500, 4000, rng);
  const vsim::MachineConfig config;  // s = 64, B = 4, L = 4
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), transposed(hism).to_coo()));
}

TEST(HismKernel, DoubleTransposeIsIdentity) {
  Rng rng(5);
  const Coo coo = random_coo(120, 80, 600, rng);
  const vsim::MachineConfig config = config_with_section(16);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const HismTransposeResult once = run_hism_transpose(hism, config);
  const HismTransposeResult twice = run_hism_transpose(once.transposed, config);
  EXPECT_TRUE(coo_equal(twice.transposed.to_coo(), coo));
}

TEST(HismKernel, EmptyMatrix) {
  const Coo coo(64, 64);
  const vsim::MachineConfig config = config_with_section(8);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  EXPECT_EQ(result.transposed.nnz(), 0u);
  EXPECT_EQ(result.stats.stm_blocks, 0u);
}

TEST(HismKernel, TransposesStrictlyInPlace) {
  // §IV-A: "the same memory location and amount as the original is needed
  // to store the transposed block and therefore no allocation of memory for
  // the transposed is needed". Verify: the kernel touches only the image
  // region and the stack — every other byte of simulated memory stays 0.
  Rng rng(21);
  const Coo coo = random_coo(120, 120, 700, rng);
  vsim::MachineConfig config;
  config.section = 8;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const vsim::Program program = vsim::assemble(kernels::hism_transpose_source());
  vsim::Machine machine(config);
  const HismImage image = kernels::stage_hism(machine, hism);
  machine.set_sreg(1, image.root_addr);
  machine.set_sreg(2, image.root_len);
  machine.set_sreg(3, image.levels - 1);
  machine.set_sreg(vsim::kRegSp, kernels::kStackTop);
  machine.run(program);

  const auto raw = machine.memory().raw();
  const Addr image_end = image.base + image.bytes.size();
  for (Addr addr = image_end; addr < raw.size(); ++addr) {
    ASSERT_EQ(raw[addr], 0u) << "stray write at 0x" << std::hex << addr;
  }
  // In-place: the image region decodes to the transpose, same footprint.
  const HismMatrix transposed = kernels::read_back_hism(machine, image, /*swap_dims=*/true);
  EXPECT_TRUE(coo_equal(transposed.to_coo(), coo.transposed()));
}

TEST(HismKernel, BandwidthSweepIsMonotone) {
  // Larger STM buffer bandwidth never slows the kernel down.
  Rng rng(22);
  const Coo coo = random_coo(256, 256, 3000, rng);
  u64 previous = ~u64{0};
  for (const u32 bandwidth : {1u, 2u, 4u, 8u}) {
    vsim::MachineConfig config;
    config.stm.bandwidth = bandwidth;
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const u64 cycles = kernels::time_hism_transpose(hism, config).cycles;
    EXPECT_LE(cycles, previous) << "B=" << bandwidth;
    previous = cycles;
  }
}

TEST(HismKernel, DenseBlockMatrix) {
  // Fully dense 16x16 with s = 8: every s^2-block is full.
  Coo coo(16, 16);
  float v = 1.0f;
  for (Index r = 0; r < 16; ++r) {
    for (Index c = 0; c < 16; ++c) coo.add(r, c, v += 1.0f);
  }
  coo.canonicalize();
  const vsim::MachineConfig config = config_with_section(8);
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const HismTransposeResult result = run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
}

}  // namespace
}  // namespace smtu
