#include <gtest/gtest.h>

#include <sstream>

#include <cstdlib>

#include "support/bits.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace smtu {
namespace {

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(64, 16), 4u);
}

TEST(Bits, RoundUp) {
  EXPECT_EQ(round_up(0, 4), 0u);
  EXPECT_EQ(round_up(1, 4), 4u);
  EXPECT_EQ(round_up(4, 4), 4u);
  EXPECT_EQ(round_up(6, 4), 8u);
}

TEST(Bits, Log2) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(64), 6u);
  EXPECT_EQ(log2_floor(65), 6u);
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(64), 6u);
  EXPECT_EQ(log2_ceil(65), 7u);
}

TEST(Bits, LogCeilBaseS) {
  // The paper's level count: q = ceil(log_s(dim)).
  EXPECT_EQ(log_ceil(1, 64), 0u);
  EXPECT_EQ(log_ceil(64, 64), 1u);
  EXPECT_EQ(log_ceil(65, 64), 2u);
  EXPECT_EQ(log_ceil(4096, 64), 2u);
  EXPECT_EQ(log_ceil(4097, 64), 3u);
}

TEST(Bits, Ipow) {
  EXPECT_EQ(ipow(64, 0), 1u);
  EXPECT_EQ(ipow(64, 2), 4096u);
  EXPECT_EQ(ipow(2, 10), 1024u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  Rng rng(11);
  const auto sample = rng.sample_without_replacement(1000, 100);
  ASSERT_EQ(sample.size(), 100u);
  for (usize i = 1; i < sample.size(); ++i) EXPECT_LT(sample[i - 1], sample[i]);
  for (const u64 v : sample) EXPECT_LT(v, 1000u);
}

TEST(Rng, SampleFullPopulation) {
  Rng rng(13);
  const auto sample = rng.sample_without_replacement(50, 50);
  ASSERT_EQ(sample.size(), 50u);
  for (usize i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitWhitespace) {
  const auto fields = split_whitespace("  a\t bb  ccc ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "bb");
  EXPECT_EQ(fields[2], "ccc");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_FALSE(parse_int("4x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
}

TEST(Table, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
}

TEST(Table, MarkdownRendering) {
  TextTable table({"a", "b"});
  table.add_row({"x", "1"});
  std::ostringstream out;
  table.print_markdown(out);
  EXPECT_EQ(out.str(), "| a | b |\n|---|---|\n| x | 1 |\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(out.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(human_count(12.0), "12.00");
  EXPECT_EQ(human_count(1234.0), "1.23k");
  EXPECT_EQ(human_count(3753461.0), "3.75M");
  EXPECT_EQ(human_count(2.5e9), "2.50G");
}

TEST(Log, LevelsFromEnvironment) {
  const LogLevel saved = log_level();
  setenv("SMTU_LOG", "debug", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Debug);
  setenv("SMTU_LOG", "off", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Off);
  setenv("SMTU_LOG", "nonsense", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::Off);  // unrecognized: unchanged
  unsetenv("SMTU_LOG");
  set_log_level(saved);
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1"};
  CommandLine cli(4, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  cli.finish();
}

}  // namespace
}  // namespace smtu
