// Tests of the D-SAB pool and the sort-and-pick-log-spaced selection
// procedure (§IV-B of the paper / the D-SAB paper).
#include <gtest/gtest.h>

#include <cmath>

#include "suite/selection.hpp"

namespace smtu::suite {
namespace {

constexpr double kPoolScale = 0.15;  // keep the 132-matrix build fast in tests

double by_nnz(const MatrixMetrics& m) { return static_cast<double>(m.nnz); }
double by_locality(const MatrixMetrics& m) { return m.locality; }
double by_anz(const MatrixMetrics& m) { return m.avg_nnz_per_row; }

TEST(DsabPool, Has132DistinctMatrices) {
  const auto pool = build_dsab_pool({.scale = kPoolScale});
  ASSERT_EQ(pool.size(), 132u);
  for (const auto& entry : pool) {
    EXPECT_GT(entry.matrix.nnz(), 0u) << entry.name;
    EXPECT_EQ(entry.set, "pool");
  }
  // Distinct names.
  std::set<std::string> names;
  for (const auto& entry : pool) names.insert(entry.name);
  EXPECT_EQ(names.size(), 132u);
}

TEST(DsabPool, Deterministic) {
  const auto a = build_dsab_pool({.scale = kPoolScale});
  const auto b = build_dsab_pool({.scale = kPoolScale});
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(structurally_equal(a[i].matrix, b[i].matrix)) << a[i].name;
  }
}

TEST(DsabPool, SpansWideParameterRanges) {
  const auto pool = build_dsab_pool({.scale = kPoolScale});
  double min_nnz = 1e300;
  double max_nnz = 0;
  double min_loc = 1e300;
  double max_loc = 0;
  for (const auto& entry : pool) {
    min_nnz = std::min(min_nnz, by_nnz(entry.metrics));
    max_nnz = std::max(max_nnz, by_nnz(entry.metrics));
    min_loc = std::min(min_loc, by_locality(entry.metrics));
    max_loc = std::max(max_loc, by_locality(entry.metrics));
  }
  EXPECT_GT(max_nnz / min_nnz, 100.0);  // several decades of size
  EXPECT_GT(max_loc / min_loc, 20.0);   // and of locality
}

class SelectionByCriterion
    : public ::testing::TestWithParam<double (*)(const MatrixMetrics&)> {};

TEST_P(SelectionByCriterion, PicksTenAscendingDistinct) {
  const auto pool = build_dsab_pool({.scale = kPoolScale});
  const auto picks = select_log_spaced(pool, 10, GetParam());
  ASSERT_EQ(picks.size(), 10u);
  for (usize i = 1; i < picks.size(); ++i) {
    EXPECT_GE(GetParam()(picks[i].metrics), GetParam()(picks[i - 1].metrics));
    EXPECT_NE(picks[i].name, picks[i - 1].name);
  }
  EXPECT_EQ(picks.front().index, 0u);
  EXPECT_EQ(picks.back().index, 9u);
}

TEST_P(SelectionByCriterion, CoversTheExtremes) {
  const auto pool = build_dsab_pool({.scale = kPoolScale});
  double min_value = 1e300;
  double max_value = 0;
  for (const auto& entry : pool) {
    const double v = GetParam()(entry.metrics);
    if (v <= 0) continue;
    min_value = std::min(min_value, v);
    max_value = std::max(max_value, v);
  }
  const auto picks = select_log_spaced(pool, 10, GetParam());
  EXPECT_DOUBLE_EQ(GetParam()(picks.front().metrics), min_value);
  EXPECT_DOUBLE_EQ(GetParam()(picks.back().metrics), max_value);
}

TEST_P(SelectionByCriterion, StepsAreRoughlyLogUniform) {
  const auto pool = build_dsab_pool({.scale = kPoolScale});
  const auto picks = select_log_spaced(pool, 10, GetParam());
  const double lo = std::log(GetParam()(picks.front().metrics));
  const double hi = std::log(GetParam()(picks.back().metrics));
  const double ideal_step = (hi - lo) / 9.0;
  for (usize k = 0; k < picks.size(); ++k) {
    const double target = lo + ideal_step * static_cast<double>(k);
    const double actual = std::log(GetParam()(picks[k].metrics));
    // Within one ideal step of the exact log-grid point (a finite pool
    // cannot hit the grid exactly).
    EXPECT_NEAR(actual, target, ideal_step + 1e-9) << "pick " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Criteria, SelectionByCriterion,
                         ::testing::Values(&by_nnz, &by_locality, &by_anz));

TEST(Selection, RejectsOversizedRequest) {
  const auto pool = build_dsab_pool({.scale = kPoolScale});
  std::vector<SuiteMatrix> tiny(pool.begin(), pool.begin() + 5);
  EXPECT_DEATH(select_log_spaced(tiny, 10, &by_nnz), "population");
}

}  // namespace
}  // namespace smtu::suite
