#include <gtest/gtest.h>

#include "hism/image.hpp"
#include "hism/transpose.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

HismMatrix decode_back(const HismImage& image) {
  return decode_hism_image(image.bytes, image.base, image.root_addr, image.root_len,
                           image.levels, image.section, image.rows, image.cols);
}

TEST(HismImage, BlockArrayImageBytes) {
  // n entries: align4(2n) + 4n, plus 4n for the lengths vector.
  EXPECT_EQ(block_array_image_bytes(0, false), 0u);
  EXPECT_EQ(block_array_image_bytes(1, false), 8u);    // 4 + 4
  EXPECT_EQ(block_array_image_bytes(2, false), 12u);   // 4 + 8
  EXPECT_EQ(block_array_image_bytes(3, false), 20u);   // 8 + 12
  EXPECT_EQ(block_array_image_bytes(3, true), 32u);    // + 12 lengths
}

TEST(HismImage, RoundTripSingleLevel) {
  Rng rng(1);
  const Coo coo = random_coo(8, 8, 20, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  const HismImage image = build_hism_image(hism, 0x1000);
  EXPECT_EQ(image.root_addr, 0x1000u);
  EXPECT_TRUE(coo_equal(decode_back(image).to_coo(), coo));
}

TEST(HismImage, RoundTripMultiLevel) {
  Rng rng(2);
  const Coo coo = random_coo(300, 200, 900, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  ASSERT_GE(hism.num_levels(), 3u);
  const HismImage image = build_hism_image(hism, 0x4000);
  EXPECT_TRUE(coo_equal(decode_back(image).to_coo(), coo));
}

TEST(HismImage, RootIsLastRegion) {
  Rng rng(3);
  const HismMatrix hism = HismMatrix::from_coo(random_coo(100, 100, 200, rng), 16);
  const HismImage image = build_hism_image(hism, 0);
  // Level pools are laid out bottom-up, so the root (top level) is last.
  const u64 root_size = block_array_image_bytes(image.root_len, image.levels > 1);
  EXPECT_EQ(image.root_addr + root_size, image.bytes.size());
}

TEST(HismImage, ImageSizeMatchesStats) {
  Rng rng(4);
  const HismMatrix hism = HismMatrix::from_coo(random_coo(64, 64, 150, rng), 8);
  const HismImage image = build_hism_image(hism, 0);
  u64 expected = 0;
  for (u32 k = 0; k < hism.num_levels(); ++k) {
    for (const BlockArray& block : hism.level(k)) {
      expected += block_array_image_bytes(block.size(), k > 0);
    }
  }
  EXPECT_EQ(image.bytes.size(), expected);
}

TEST(HismImage, LengthsVectorIsSerialized) {
  Rng rng(5);
  const Coo coo = random_coo(60, 60, 100, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  ASSERT_EQ(hism.num_levels(), 2u);
  const HismMatrix decoded = decode_back(build_hism_image(hism, 0x100));
  const BlockArray& root = decoded.root();
  for (usize i = 0; i < root.size(); ++i) {
    EXPECT_EQ(root.child_len[i], decoded.level(0)[root.slot[i]].size());
  }
}

TEST(HismImage, TransposedImageDecodesTransposed) {
  // Serialize, transpose in the object domain, re-serialize at the same
  // base: the decode of the second image must be the transpose.
  Rng rng(6);
  const Coo coo = random_coo(90, 40, 300, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  const HismMatrix t = transposed(hism);
  const HismImage image_t = build_hism_image(t, 0x2000);
  EXPECT_TRUE(coo_equal(decode_back(image_t).to_coo(), coo.transposed()));
}

TEST(HismImage, EmptyMatrix) {
  const HismMatrix hism = HismMatrix::from_coo(Coo(30, 30), 8);
  const HismImage image = build_hism_image(hism, 0x40);
  EXPECT_EQ(image.root_len, 0u);
  EXPECT_TRUE(coo_equal(decode_back(image).to_coo(), Coo(30, 30)));
}

TEST(HismImageDeathTest, UnalignedBaseAborts) {
  const HismMatrix hism = HismMatrix::from_coo(Coo(8, 8), 8);
  EXPECT_DEATH(build_hism_image(hism, 0x1002), "aligned");
}

}  // namespace
}  // namespace smtu
