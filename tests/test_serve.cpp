// The serving engine (src/serve, docs/SERVING.md): trace record/replay
// round-trips, parse validation, the virtual-time scheduler's dedup /
// admission / shedding semantics, and the determinism contract — the
// deterministic report fragment must be bit-identical across -j values and
// across a write->parse trace round-trip. The checked-in benchmark trace
// (SMTU_TRACE_DIR, injected by tests/CMakeLists.txt) is held byte-stable.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "support/json.hpp"

namespace smtu::serve {
namespace {

constexpr const char* kCheckedInTrace = SMTU_TRACE_DIR "/serve_zipf_scale005.json";

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  JsonWriter json(out);
  write_trace_json(json, trace);
  out << '\n';  // write_trace_file appends the same newline
  return out.str();
}

std::optional<Trace> parse_string(const std::string& text, std::string* error = nullptr) {
  const std::optional<JsonValue> document = parse_json(text, error);
  if (!document.has_value()) return std::nullopt;
  return parse_trace(*document, error);
}

// A hand-built trace small enough to mutate into every invalid shape.
Trace tiny_trace() {
  Trace trace;
  trace.seed = 7;
  trace.set = "locality";
  trace.matrix_count = 4;
  trace.configs.push_back(ConfigSpec{});
  for (u32 id = 0; id < 3; ++id) {
    Request request;
    request.id = id;
    request.matrix = id;
    request.kernel = Kernel::kHism;
    request.config = 0;
    request.arrival_us = 10 * id;
    trace.requests.push_back(request);
  }
  return trace;
}

GeneratorOptions small_generator() {
  GeneratorOptions options;
  options.requests = 40;
  options.suite.scale = 0.02;
  return options;
}

// Everything before the "host" section — schema, trace echo, options echo,
// and the whole "virtual" section — is the deterministic report fragment.
std::string deterministic_fragment(const Trace& trace, const ServeOptions& options,
                                   const ServeReport& report) {
  std::ostringstream out;
  JsonWriter json(out);
  write_serve_report_json(json, trace, options, report);
  const std::string text = out.str();
  const auto host = text.find("\"host\"");
  EXPECT_NE(host, std::string::npos) << "report has no host section";
  return host == std::string::npos ? text : text.substr(0, host);
}

// ---- trace generation and record/replay ------------------------------------

TEST(ServeTrace, GenerationIsDeterministic) {
  const GeneratorOptions options = small_generator();
  const Trace a = generate_trace(options);
  const Trace b = generate_trace(options);
  EXPECT_EQ(trace_to_string(a), trace_to_string(b));

  GeneratorOptions reseeded = options;
  reseeded.seed ^= 1;
  EXPECT_NE(trace_to_string(a), trace_to_string(generate_trace(reseeded)));
}

TEST(ServeTrace, ArrivalsAreNondecreasingInEveryMode) {
  for (const char* mode : {"poisson", "bursty", "heavytail"}) {
    GeneratorOptions options = small_generator();
    options.arrival.mode = mode;
    const Trace trace = generate_trace(options);
    ASSERT_EQ(trace.requests.size(), options.requests);
    u64 previous = 0;
    for (const Request& request : trace.requests) {
      EXPECT_GE(request.arrival_us, previous) << mode;
      previous = request.arrival_us;
      EXPECT_LT(request.matrix, trace.matrix_count) << mode;
      EXPECT_LT(request.config, trace.configs.size()) << mode;
    }
  }
}

TEST(ServeTrace, JsonRoundTripIsByteIdentical) {
  const Trace trace = generate_trace(small_generator());
  const std::string first = trace_to_string(trace);
  std::string error;
  const std::optional<Trace> parsed = parse_string(first, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(trace_to_string(*parsed), first);
}

TEST(ServeTrace, CheckedInTraceIsByteStable) {
  std::ifstream in(kCheckedInTrace);
  ASSERT_TRUE(in.is_open()) << kCheckedInTrace;
  std::ostringstream text;
  text << in.rdbuf();
  const Trace trace = load_trace_file(kCheckedInTrace);
  EXPECT_EQ(trace_to_string(trace), text.str())
      << "re-rendering the checked-in trace changed its bytes; regenerate "
         "bench/traces and the bench/baselines serve reports together";
}

TEST(ServeTrace, ParseRejectsWrongSchema) {
  std::string text = trace_to_string(tiny_trace());
  const auto at = text.find("smtu-trace-v1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 13, "smtu-trace-v9");
  std::string error;
  EXPECT_FALSE(parse_string(text, &error).has_value());
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(ServeTrace, ParseRejectsUnknownKernel) {
  std::string text = trace_to_string(tiny_trace());
  // "hism" quoted appears only as a request's kernel value ("hism_fraction"
  // is not followed by a closing quote after the m).
  const auto at = text.find("\"hism\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 6, "\"warp\"");
  std::string error;
  EXPECT_FALSE(parse_string(text, &error).has_value());
  EXPECT_NE(error.find("kernel"), std::string::npos) << error;
}

TEST(ServeTrace, ParseRejectsMatrixIndexOutOfRange) {
  Trace trace = tiny_trace();
  trace.requests[1].matrix = trace.matrix_count;
  std::string error;
  EXPECT_FALSE(parse_string(trace_to_string(trace), &error).has_value());
  EXPECT_NE(error.find("matrix index"), std::string::npos) << error;
}

TEST(ServeTrace, ParseRejectsConfigIndexOutOfRange) {
  Trace trace = tiny_trace();
  trace.requests[2].config = static_cast<u32>(trace.configs.size());
  std::string error;
  EXPECT_FALSE(parse_string(trace_to_string(trace), &error).has_value());
  EXPECT_NE(error.find("config index"), std::string::npos) << error;
}

TEST(ServeTrace, ParseRejectsDecreasingArrivals) {
  Trace trace = tiny_trace();
  trace.requests[2].arrival_us = trace.requests[1].arrival_us - 1;
  std::string error;
  EXPECT_FALSE(parse_string(trace_to_string(trace), &error).has_value());
  EXPECT_NE(error.find("decreases"), std::string::npos) << error;
}

// ---- the virtual-time scheduler in isolation -------------------------------

Request request_at(u32 id, u32 matrix, u64 arrival_us, Kernel kernel = Kernel::kHism,
                   u32 config = 0) {
  Request request;
  request.id = id;
  request.matrix = matrix;
  request.kernel = kernel;
  request.config = config;
  request.arrival_us = arrival_us;
  return request;
}

using KeyCycles = std::unordered_map<SimKey, u64, SimKeyHash>;

TEST(ServeVirtual, DuplicateInFlightKeysCoalesce) {
  // 10000 cycles at 1000 cycles/vus = 10 vus of service. The duplicate
  // arrives at t=4, mid-flight, and attaches: no worker, no extra cycles.
  const std::vector<Request> requests = {request_at(0, 0, 0), request_at(1, 0, 4)};
  const KeyCycles cycles = {{key_of(requests[0]), 10000}};
  const VirtualReport report = run_virtual(requests, cycles, ServeOptions{});

  EXPECT_EQ(report.simulated_requests, 1u);
  EXPECT_EQ(report.coalesced_requests, 1u);
  EXPECT_EQ(report.warm_requests, 0u);
  EXPECT_EQ(report.shed_requests, 0u);
  EXPECT_EQ(report.distinct_sims, 1u);
  EXPECT_EQ(report.sim_cycles, 10000u);
  EXPECT_EQ(report.offered_cycles, 20000u);

  EXPECT_EQ(report.outcomes[0].outcome, Outcome::kSimulated);
  EXPECT_EQ(report.outcomes[0].service_vus, 10u);
  EXPECT_EQ(report.outcomes[0].total_vus, 10u);
  EXPECT_EQ(report.outcomes[1].outcome, Outcome::kCoalesced);
  EXPECT_EQ(report.outcomes[1].total_vus, 6u);  // completes with the run at t=10
  EXPECT_EQ(report.makespan_vus, 10u);
}

TEST(ServeVirtual, CompletedKeysReplayWarmAtFlatCost) {
  const std::vector<Request> requests = {request_at(0, 0, 0), request_at(1, 0, 50)};
  const KeyCycles cycles = {{key_of(requests[0]), 10000}};
  ServeOptions options;
  options.replay_vus = 20;
  const VirtualReport report = run_virtual(requests, cycles, options);

  EXPECT_EQ(report.simulated_requests, 1u);
  EXPECT_EQ(report.warm_requests, 1u);
  EXPECT_EQ(report.coalesced_requests, 0u);
  EXPECT_EQ(report.sim_cycles, 10000u);  // the warm replay costs no cycles
  EXPECT_EQ(report.outcomes[1].outcome, Outcome::kWarm);
  EXPECT_EQ(report.outcomes[1].service_vus, 20u);
  EXPECT_EQ(report.outcomes[1].total_vus, 20u);
}

TEST(ServeVirtual, FullQueueShedsArrivals) {
  // One worker, queue depth 1, distinct keys: the first request occupies the
  // worker, the second queues, the third is shed on arrival.
  const std::vector<Request> requests = {request_at(0, 0, 0), request_at(1, 1, 1),
                                         request_at(2, 2, 2)};
  KeyCycles cycles;
  for (const Request& request : requests) cycles[key_of(request)] = 1000000;
  ServeOptions options;
  options.dedup = false;
  options.virtual_workers = 1;
  options.queue_depth = 1;
  const VirtualReport report = run_virtual(requests, cycles, options);

  EXPECT_EQ(report.shed_requests, 1u);
  EXPECT_EQ(report.admitted_requests, 2u);
  EXPECT_EQ(report.max_queue_depth, 1u);
  EXPECT_EQ(report.outcomes[2].outcome, Outcome::kShed);
  EXPECT_EQ(report.outcomes[2].total_vus, 0u);
  // The queued request starts when the first completes at t=1000.
  EXPECT_EQ(report.outcomes[1].queue_vus, 999u);
  EXPECT_EQ(report.outcomes[1].total_vus, 1999u);
  // Shed requests do not contribute latency samples.
  EXPECT_EQ(report.total.count, 2u);
}

TEST(ServeVirtual, NoDedupSimulatesEveryRequest) {
  const std::vector<Request> requests = {request_at(0, 0, 0), request_at(1, 0, 100),
                                         request_at(2, 0, 200)};
  const KeyCycles cycles = {{key_of(requests[0]), 5000}};
  ServeOptions options;
  options.dedup = false;
  const VirtualReport report = run_virtual(requests, cycles, options);

  EXPECT_EQ(report.simulated_requests, 3u);
  EXPECT_EQ(report.warm_requests, 0u);
  EXPECT_EQ(report.coalesced_requests, 0u);
  EXPECT_EQ(report.distinct_sims, 1u);
  EXPECT_EQ(report.sim_cycles, 15000u);  // dedup off: every request pays
  EXPECT_EQ(report.offered_cycles, 15000u);
}

TEST(ServeVirtual, ClosedLoopAdmitsEverythingAndFansOut) {
  // Two clients over four identical requests: client issue order is
  // simulate, coalesce (both outstanding), then — after the shared run
  // completes and fans out two follow-ups — warm, coalesce-on-warm.
  const std::vector<Request> requests = {request_at(0, 0, 0), request_at(1, 0, 0),
                                         request_at(2, 0, 0), request_at(3, 0, 0)};
  const KeyCycles cycles = {{key_of(requests[0]), 10000}};
  ServeOptions options;
  options.closed_loop = 2;
  options.queue_depth = 1;  // closed loop never sheds regardless of depth
  const VirtualReport report = run_virtual(requests, cycles, options);

  EXPECT_EQ(report.shed_requests, 0u);
  EXPECT_EQ(report.admitted_requests, 4u);
  EXPECT_EQ(report.simulated_requests, 1u);
  EXPECT_EQ(report.coalesced_requests, 2u);
  EXPECT_EQ(report.warm_requests, 1u);
}

TEST(ServeVirtual, LatencySummaryUsesHistogramRankConvention) {
  // rank = ceil(q% * count), 1-based, over the exact sorted values — the
  // telemetry::LatencyHistogram convention without bucketing error.
  const LatencySummary summary =
      summarize_latencies({100, 10, 30, 20, 50, 40, 60, 80, 70, 90});
  EXPECT_EQ(summary.count, 10u);
  EXPECT_EQ(summary.min, 10u);
  EXPECT_EQ(summary.max, 100u);
  EXPECT_DOUBLE_EQ(summary.mean, 55.0);
  EXPECT_EQ(summary.p50, 50u);   // rank ceil(5.0)  = 5
  EXPECT_EQ(summary.p90, 90u);   // rank ceil(9.0)  = 9
  EXPECT_EQ(summary.p95, 100u);  // rank ceil(9.5)  = 10
  EXPECT_EQ(summary.p99, 100u);

  const LatencySummary empty = summarize_latencies({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0u);
}

// ---- end to end: host execution + deterministic report ---------------------

TEST(ServeEndToEnd, ReportFragmentBitIdenticalAcrossJobs) {
  const Trace trace = generate_trace(small_generator());
  ServeOptions one;
  one.jobs = 1;
  ServeOptions two;
  two.jobs = 2;
  const std::string first = deterministic_fragment(trace, one, serve_trace(trace, one));
  const std::string second = deterministic_fragment(trace, two, serve_trace(trace, two));
  EXPECT_EQ(first, second)
      << "virtual-time report depends on the host ThreadPool width";
}

TEST(ServeEndToEnd, RoundTrippedTraceReplaysBitIdentically) {
  // The satellite contract: record a trace, replay the parsed copy, and the
  // deterministic report fragment matches the original run bit for bit.
  const Trace trace = generate_trace(small_generator());
  std::string error;
  const std::optional<Trace> parsed = parse_string(trace_to_string(trace), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const ServeOptions options;
  const std::string original = deterministic_fragment(trace, options, serve_trace(trace, options));
  const std::string replayed =
      deterministic_fragment(*parsed, options, serve_trace(*parsed, options));
  EXPECT_EQ(original, replayed);
}

TEST(ServeEndToEnd, CheckedInTraceMeetsStructuralSpeedupFloor) {
  // The >=5x batched-vs-naive target is recorded as wall clock in
  // bench/baselines (nondeterministic, never gated). The deterministic
  // structure behind it is gated here: dedup must remove at least 5x of the
  // offered simulation work, and the host must run at most 1/5 of the
  // trace's requests as real simulations.
  const Trace trace = load_trace_file(kCheckedInTrace);
  const ServeOptions options;
  const ServeReport report = serve_trace(trace, options);

  EXPECT_GE(report.virt.offered_cycles, 5 * report.virt.sim_cycles);
  EXPECT_GE(trace.requests.size(), 5 * report.host.simulations);
  EXPECT_EQ(report.virt.shed_requests, 0u) << "the checked-in trace should not shed";
  EXPECT_EQ(report.virt.admitted_requests, trace.requests.size());
  EXPECT_EQ(report.virt.simulated_requests + report.virt.warm_requests +
                report.virt.coalesced_requests,
            trace.requests.size());
}

}  // namespace
}  // namespace smtu::serve
