// Host telemetry primitives (src/support/telemetry.*): log-bucket geometry,
// percentile extraction against a sorted-vector oracle, cross-thread shard
// merging, counter saturation, and the cache hit/miss counters fed by the
// process-wide caches. Everything here measures the host runtime, never the
// simulated machine (docs/TELEMETRY.md).
#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "formats/coo.hpp"
#include "kernels/staging.hpp"
#include "vsim/program_cache.hpp"

namespace smtu::telemetry {
namespace {

// Deterministic 64-bit generator (splitmix64); tests must not consult the
// wall clock or a seeded-by-time RNG.
class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed) {}
  u64 next() {
    state_ += 0x9e3779b97f4a7c15ull;
    u64 z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

// Restores the global telemetry switch and zeroes the registry around each
// test that flips it, so test order never leaks state.
class TelemetryGuard {
 public:
  TelemetryGuard() { MetricsRegistry::instance().reset_for_tests(); }
  ~TelemetryGuard() {
    set_enabled(false);
    set_host_trace_enabled(false);
    MetricsRegistry::instance().reset_for_tests();
  }
};

TEST(Buckets, SmallValuesGetExactBuckets) {
  // 0..3 are their own buckets with exact bounds.
  for (u64 v = 0; v < 4; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(v), v);
  }
}

TEST(Buckets, IndexIsMonotonicAndBoundContainsValue) {
  // Dense sweep over the small range plus exponential probes up to 2^63:
  // bucket_index never decreases and every value is <= its bucket's bound.
  usize previous = 0;
  for (u64 v = 0; v < 4096; ++v) {
    const usize index = LatencyHistogram::bucket_index(v);
    EXPECT_GE(index, previous) << "index not monotonic at " << v;
    EXPECT_LE(v, LatencyHistogram::bucket_upper_bound(index)) << "value " << v;
    EXPECT_LT(index, LatencyHistogram::kBucketCount);
    previous = index;
  }
  for (int shift = 12; shift < 64; ++shift) {
    for (u64 offset : {u64{0}, u64{1}, (u64{1} << shift) - 1}) {
      const u64 v = (u64{1} << shift) + offset;
      if (v < (u64{1} << shift)) continue;  // overflow guard at shift 63
      const usize index = LatencyHistogram::bucket_index(v);
      EXPECT_LT(index, LatencyHistogram::kBucketCount);
      EXPECT_LE(v, LatencyHistogram::bucket_upper_bound(index));
      if (index > 0) {
        EXPECT_GT(v, LatencyHistogram::bucket_upper_bound(index - 1))
            << "value " << v << " below its bucket's lower edge";
      }
    }
  }
}

TEST(Buckets, BucketBoundariesAreExactAtPowersOfTwo) {
  // Each octave [2^k, 2^(k+1)) splits into 4 sub-buckets; the first value of
  // an octave starts a fresh bucket.
  for (int shift = 2; shift < 63; ++shift) {
    const u64 base = u64{1} << shift;
    EXPECT_EQ(LatencyHistogram::bucket_index(base),
              LatencyHistogram::bucket_index(base + (base >> 2) - 1))
        << "first quarter of octave 2^" << shift << " split";
    EXPECT_NE(LatencyHistogram::bucket_index(base - 1),
              LatencyHistogram::bucket_index(base))
        << "octave boundary 2^" << shift << " not a bucket boundary";
  }
}

TEST(Buckets, RelativeWidthAtMost25Percent) {
  // For every bucket above the exact range, (upper - lower + 1) / lower
  // <= 25%: the percentile error bound documented in TELEMETRY.md.
  for (usize index = 4; index < LatencyHistogram::kBucketCount; ++index) {
    const u64 lower = LatencyHistogram::bucket_upper_bound(index - 1) + 1;
    const u64 upper = LatencyHistogram::bucket_upper_bound(index);
    if (upper == std::numeric_limits<u64>::max()) continue;  // last bucket
    EXPECT_LE(upper - lower + 1, lower / 2)  // width = lower/4 exactly
        << "bucket " << index << " wider than 25% of its lower edge";
  }
}

TEST(Buckets, LastBucketCoversU64Max) {
  const u64 top = std::numeric_limits<u64>::max();
  const usize index = LatencyHistogram::bucket_index(top);
  EXPECT_EQ(index, LatencyHistogram::kBucketCount - 1);
  EXPECT_EQ(LatencyHistogram::bucket_upper_bound(index), top);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  LatencyHistogram hist;
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.percentile(50), 0u);
  EXPECT_EQ(snap.percentile(99), 0u);
}

TEST(Histogram, SingleSampleIsExactEverywhere) {
  LatencyHistogram hist;
  hist.record(1234);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 1234u);
  EXPECT_EQ(snap.min, 1234u);
  EXPECT_EQ(snap.max, 1234u);
  // Any percentile of one sample is that sample; the max clamp makes it
  // exact even though the bucket bound is coarser.
  EXPECT_EQ(snap.percentile(50), 1234u);
  EXPECT_EQ(snap.percentile(99), 1234u);
}

// The documented percentile contract, phrased against a sorted oracle: the
// reported value is the oracle sample's bucket upper bound, clamped to the
// exact maximum.
u64 oracle_percentile(const std::vector<u64>& sorted, double q) {
  const u64 count = sorted.size();
  u64 rank = static_cast<u64>(std::ceil(q / 100.0 * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  const u64 sample = sorted[rank - 1];
  const u64 bound = LatencyHistogram::bucket_upper_bound(
      LatencyHistogram::bucket_index(sample));
  return std::min(bound, sorted.back());
}

TEST(Histogram, PercentilesMatchSortedVectorOracle) {
  Rng rng(7);
  LatencyHistogram hist;
  std::vector<u64> oracle;
  for (int i = 0; i < 5000; ++i) {
    // Mix magnitudes: exact-range values, microsecond-scale, and huge.
    const u64 pick = rng.next();
    u64 value;
    switch (pick % 4) {
      case 0: value = pick % 4; break;
      case 1: value = pick % 1000; break;
      case 2: value = pick % 1000000; break;
      default: value = pick >> 12; break;
    }
    hist.record(value);
    oracle.push_back(value);
  }
  std::sort(oracle.begin(), oracle.end());
  const auto snap = hist.snapshot();
  ASSERT_EQ(snap.count, oracle.size());
  EXPECT_EQ(snap.min, oracle.front());
  EXPECT_EQ(snap.max, oracle.back());
  for (double q : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(snap.percentile(q), oracle_percentile(oracle, q)) << "q=" << q;
  }
}

TEST(Histogram, PercentileBoundWithin25PercentOfExact) {
  // End-to-end statement of the accuracy contract: the reported percentile
  // never undershoots the exact order statistic and overshoots by < 25%.
  Rng rng(99);
  LatencyHistogram hist;
  std::vector<u64> oracle;
  for (int i = 0; i < 2000; ++i) {
    const u64 value = 5 + rng.next() % 100000;
    hist.record(value);
    oracle.push_back(value);
  }
  std::sort(oracle.begin(), oracle.end());
  const auto snap = hist.snapshot();
  for (double q : {50.0, 90.0, 95.0, 99.0}) {
    const u64 rank = static_cast<u64>(
        std::ceil(q / 100.0 * static_cast<double>(oracle.size())));
    const u64 exact = oracle[rank - 1];
    const u64 reported = snap.percentile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LT(static_cast<double>(reported),
              static_cast<double>(exact) * 1.25 + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, ResetZeroesInPlace) {
  LatencyHistogram hist;
  hist.record(10);
  hist.record(20);
  hist.reset();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.percentile(50), 0u);
  hist.record(7);  // shards survive the reset and keep recording
  EXPECT_EQ(hist.snapshot().count, 1u);
  EXPECT_EQ(hist.snapshot().max, 7u);
}

TEST(Histogram, ShardsMergeAcrossThreads) {
  // Raw std::thread, not ThreadPool: the pool degenerates to inline
  // execution on single-hardware-thread hosts, which would leave every
  // sample in one shard. Each spawned thread gets its own shard slot;
  // snapshot() must see the union with exact count/sum/min/max.
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<u64>(t * kPerThread + i + 1));
      }
    });
  }
  // Concurrent snapshots while recorders run: must be race-free (TSan) and
  // internally consistent, never over the final count.
  for (int probe = 0; probe < 50; ++probe) {
    const auto snap = hist.snapshot();
    EXPECT_LE(snap.count, u64{kThreads} * kPerThread);
  }
  for (auto& thread : threads) thread.join();
  const auto snap = hist.snapshot();
  const u64 n = u64{kThreads} * kPerThread;
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n + 1) / 2);  // values are exactly 1..n
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, n);
  u64 bucket_total = 0;
  for (u64 b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

TEST(Counter, SaturatesAtU64MaxInsteadOfWrapping) {
  Counter counter;
  counter.add(std::numeric_limits<u64>::max() - 5);
  counter.add(3);
  EXPECT_EQ(counter.value(), std::numeric_limits<u64>::max() - 2);
  counter.add(100);  // would wrap; must clamp
  EXPECT_EQ(counter.value(), std::numeric_limits<u64>::max());
  counter.add(1);  // stays saturated
  EXPECT_EQ(counter.value(), std::numeric_limits<u64>::max());
}

TEST(Gauge, KeepsHighWatermark) {
  Gauge gauge;
  gauge.update_max(5);
  gauge.update_max(3);
  EXPECT_EQ(gauge.value(), 5u);
  gauge.update_max(9);
  EXPECT_EQ(gauge.value(), 9u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  TelemetryGuard guard;
  Counter& a = counter("test.registry.a_total");
  Counter& b = counter("test.registry.a_total");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(&histogram("test.registry.h_us"), &histogram("test.registry.h_us"));
  EXPECT_EQ(&gauge("test.registry.g_peak"), &gauge("test.registry.g_peak"));
}

TEST(Instrumentation, DisabledTelemetryRecordsNothing) {
  TelemetryGuard guard;
  ASSERT_FALSE(enabled());
  {
    HostSpan span("test.off.span_us");
  }
  EXPECT_EQ(histogram("test.off.span_us").snapshot().count, 0u);
  EXPECT_TRUE(host_trace_events().empty());
}

TEST(Instrumentation, HostSpanRecordsWhenEnabled) {
  TelemetryGuard guard;
  set_enabled(true);
  {
    HostSpan span("test.on.span_us");
  }
  {
    HostSpan span("test.on.span_us");
  }
  EXPECT_EQ(histogram("test.on.span_us").snapshot().count, 2u);
}

// Scripted hit/miss sequence against the real process-wide caches: the
// counters must match the script exactly, not merely move.
TEST(CacheCounters, ProgramCacheScript) {
  TelemetryGuard guard;
  auto& cache = vsim::ProgramCache::instance();
  cache.clear();
  MetricsRegistry::instance().reset_for_tests();  // drop the eviction counts
  set_enabled(true);

  const std::string a = "halt\n";
  const std::string b = "addi r1, r1, 1\nhalt\n";
  cache.get(a);  // miss
  cache.get(a);  // hit
  cache.get(b);  // miss
  cache.get(a);  // hit
  cache.get(b);  // hit

  EXPECT_EQ(counter("cache.program.hits_total").value(), 3u);
  EXPECT_EQ(counter("cache.program.misses_total").value(), 2u);
  EXPECT_EQ(counter("cache.program.bytes_total").value(), a.size() + b.size());
  EXPECT_EQ(histogram("cache.program.lookup_us").snapshot().count, 5u);

  cache.clear();  // both entries evicted
  EXPECT_EQ(counter("cache.program.evictions_total").value(), 2u);
}

TEST(CacheCounters, StageCacheScript) {
  TelemetryGuard guard;
  auto& cache = kernels::MatrixStageCache::instance();
  cache.clear();
  MetricsRegistry::instance().reset_for_tests();
  set_enabled(true);

  Coo coo(8, 8);
  coo.add(0, 1, 1.0f);
  coo.add(3, 2, 2.0f);
  coo.add(7, 7, 3.0f);
  Coo other(8, 8);
  other.add(1, 0, 4.0f);

  cache.hism(coo, 64);    // miss
  cache.hism(coo, 64);    // hit
  cache.hism(coo, 32);    // miss: section size is part of the key
  cache.crs(coo);         // miss (separate namespace from hism)
  cache.crs(coo);         // hit
  cache.hism(other, 64);  // miss

  EXPECT_EQ(counter("cache.stage.hits_total").value(), 2u);
  EXPECT_EQ(counter("cache.stage.misses_total").value(), 4u);
  EXPECT_GT(counter("cache.stage.bytes_total").value(), 0u);
  EXPECT_EQ(histogram("cache.stage.lookup_us").snapshot().count, 6u);
}

TEST(CacheCounters, CountersUntouchedWhileDisabled) {
  TelemetryGuard guard;
  auto& cache = vsim::ProgramCache::instance();
  cache.clear();
  MetricsRegistry::instance().reset_for_tests();
  ASSERT_FALSE(enabled());

  cache.get("halt\n");
  cache.get("halt\n");

  EXPECT_EQ(counter("cache.program.hits_total").value(), 0u);
  EXPECT_EQ(counter("cache.program.misses_total").value(), 0u);
  EXPECT_EQ(histogram("cache.program.lookup_us").snapshot().count, 0u);
  cache.clear();
  EXPECT_EQ(counter("cache.program.evictions_total").value(), 0u);
}

}  // namespace
}  // namespace smtu::telemetry
