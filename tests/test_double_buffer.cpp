// The double-buffered STM variant (extension E4) must never change
// architectural results, never slow anything down, and must preserve the
// fill-before-drain ordering per block.
#include <gtest/gtest.h>

#include "kernels/hism_transpose.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

TEST(DoubleBuffer, ResultsIdentical) {
  Rng rng(1);
  const Coo coo = random_coo(200, 200, 2000, rng);
  vsim::MachineConfig config;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  config.stm.double_buffer = false;
  const auto single = kernels::run_hism_transpose(hism, config, true);
  config.stm.double_buffer = true;
  const auto twin = kernels::run_hism_transpose(hism, config, true);

  EXPECT_TRUE(coo_equal(single.transposed.to_coo(), coo.transposed()));
  EXPECT_TRUE(coo_equal(twin.transposed.to_coo(), coo.transposed()));
  EXPECT_EQ(single.stats.instructions, twin.stats.instructions);
}

TEST(DoubleBuffer, NeverSlower) {
  Rng rng(2);
  for (const u32 bandwidth : {1u, 4u, 8u}) {
    const Coo coo = random_coo(150, 150, 1500, rng);
    vsim::MachineConfig config;
    config.stm.bandwidth = bandwidth;
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    config.stm.double_buffer = false;
    const u64 single = kernels::time_hism_transpose(hism, config, true).cycles;
    config.stm.double_buffer = true;
    const u64 twin = kernels::time_hism_transpose(hism, config, true).cycles;
    EXPECT_LE(twin, single) << "B=" << bandwidth;
  }
}

TEST(PipelinedKernel, CorrectAcrossShapes) {
  Rng rng(10);
  struct Shape {
    Index rows, cols;
    usize nnz;
  };
  for (const Shape& shape : {Shape{64, 64, 500}, Shape{200, 120, 2000},
                             Shape{500, 500, 6000}, Shape{70, 300, 1500}}) {
    const Coo coo = random_coo(shape.rows, shape.cols, shape.nnz, rng);
    vsim::MachineConfig config;
    config.stm.double_buffer = true;
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const auto result = kernels::run_hism_transpose_pipelined(hism, config);
    ASSERT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()))
        << shape.rows << "x" << shape.cols;
    ASSERT_TRUE(result.transposed.validate());
  }
}

TEST(PipelinedKernel, CorrectOnThreeLevelHierarchy) {
  Rng rng(11);
  const Coo coo = random_coo(300, 300, 2500, rng);
  vsim::MachineConfig config;
  config.section = 8;  // forces 3 levels
  config.stm.double_buffer = true;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  ASSERT_EQ(hism.num_levels(), 3u);
  const auto result = kernels::run_hism_transpose_pipelined(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
}

TEST(PipelinedKernel, BeatsSequentialKernel) {
  Rng rng(12);
  const Coo coo = random_coo(256, 256, 15000, rng);
  vsim::MachineConfig config;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const u64 sequential = kernels::time_hism_transpose(hism, config).cycles;
  config.stm.double_buffer = true;
  const u64 pipelined = kernels::time_hism_transpose_pipelined(hism, config).cycles;
  EXPECT_LT(pipelined, sequential);
  EXPECT_GT(static_cast<double>(sequential) / static_cast<double>(pipelined), 1.3);
}

TEST(PipelinedKernel, EmptyAndSingleBlockEdges) {
  vsim::MachineConfig config;
  config.section = 8;
  config.stm.double_buffer = true;
  // Empty matrix.
  const HismMatrix empty = HismMatrix::from_coo(Coo(64, 64), config.section);
  EXPECT_EQ(kernels::run_hism_transpose_pipelined(empty, config).transposed.nnz(), 0u);
  // Single-block matrix (no children to pipeline).
  Rng rng(13);
  const Coo tiny = random_coo(8, 8, 20, rng);
  const HismMatrix single = HismMatrix::from_coo(tiny, config.section);
  EXPECT_TRUE(coo_equal(
      kernels::run_hism_transpose_pipelined(single, config).transposed.to_coo(),
      tiny.transposed()));
}

TEST(PipelinedKernelDeathTest, RequiresDoubleBuffer) {
  const vsim::MachineConfig config;  // single buffer
  const HismMatrix hism = HismMatrix::from_coo(Coo(8, 8), config.section);
  EXPECT_DEATH(kernels::run_hism_transpose_pipelined(hism, config), "double-buffered");
}

TEST(DoubleBuffer, SplitRegisterKernelMatchesDefaultKernel) {
  Rng rng(3);
  const Coo coo = random_coo(100, 100, 800, rng);
  const vsim::MachineConfig config;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const auto shared = kernels::run_hism_transpose(hism, config, false);
  const auto split = kernels::run_hism_transpose(hism, config, true);
  EXPECT_TRUE(coo_equal(shared.transposed.to_coo(), split.transposed.to_coo()));
  EXPECT_EQ(shared.stats.instructions, split.stats.instructions);
}

}  // namespace
}  // namespace smtu
