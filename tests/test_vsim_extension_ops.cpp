// Functional tests of the ISA additions beyond the transpose paper's core:
// scalar float ops, vector compares (mask generation), float reduction, and
// the positional gather/scatter of the HiSM SpMV extension.
#include <gtest/gtest.h>

#include <bit>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu::vsim {
namespace {

float as_float(u64 bits) { return std::bit_cast<float>(static_cast<u32>(bits)); }

TEST(ExtensionOps, ScalarFloatArithmetic) {
  Machine machine{MachineConfig{}};
  machine.set_sreg(1, std::bit_cast<u32>(1.5f));
  machine.set_sreg(2, std::bit_cast<u32>(-0.25f));
  machine.run(assemble(
      "fadd r3, r1, r2\n"
      "fmul r4, r1, r2\n"
      "fmul r5, r3, r3\n"
      "halt\n"));
  EXPECT_FLOAT_EQ(as_float(machine.sreg(3)), 1.25f);
  EXPECT_FLOAT_EQ(as_float(machine.sreg(4)), -0.375f);
  EXPECT_FLOAT_EQ(as_float(machine.sreg(5)), 1.5625f);
}

TEST(ExtensionOps, VectorCompareEqual) {
  Machine machine{MachineConfig{}};
  machine.run(assemble(
      "li r1, 8\n"
      "ssvl r1\n"
      "v_iota vr1\n"
      "v_bcasti vr2, 3\n"
      "v_seq vr3, vr1, vr2\n"   // one-hot at lane 3
      "li r2, 5\n"
      "v_seqs vr4, vr1, r2\n"   // one-hot at lane 5
      "v_redsum r3, vr3\n"
      "v_redsum r4, vr4\n"
      "halt\n"));
  EXPECT_EQ(machine.vreg(3)[3], 1u);
  EXPECT_EQ(machine.vreg(3)[2], 0u);
  EXPECT_EQ(machine.vreg(4)[5], 1u);
  EXPECT_EQ(machine.sreg(3), 1u);
  EXPECT_EQ(machine.sreg(4), 1u);
}

TEST(ExtensionOps, MaskCountingPattern) {
  // The §IV-A mask scheme: count occurrences of a value in a vector.
  Machine machine{MachineConfig{}};
  const u32 data[8] = {7, 3, 7, 7, 1, 3, 7, 0};
  for (u32 i = 0; i < 8; ++i) machine.memory().write_u32(0x1000 + 4 * i, data[i]);
  machine.run(assemble(
      "li r1, 8\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_ld vr0, (r2)\n"
      "li r3, 7\n"
      "v_seqs vr1, vr0, r3\n"
      "v_redsum r4, vr1\n"
      "halt\n"));
  EXPECT_EQ(machine.sreg(4), 4u);
}

TEST(ExtensionOps, VectorFloatReduction) {
  Machine machine{MachineConfig{}};
  for (u32 i = 0; i < 6; ++i) {
    machine.memory().write_f32(0x1000 + 4 * i, 0.5f * static_cast<float>(i));
  }
  machine.run(assemble(
      "li r1, 6\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_ld vr1, (r2)\n"
      "v_fredsum r3, vr1\n"
      "halt\n"));
  EXPECT_FLOAT_EQ(as_float(machine.sreg(3)), 7.5f);  // 0.5 * (0+1+..+5)
}

TEST(ExtensionOps, PositionalGatherByColumn) {
  Machine machine{MachineConfig{}};
  // x[] = 100..107; positions with columns {5, 0, 2}.
  for (u32 i = 0; i < 8; ++i) machine.memory().write_f32(0x2000 + 4 * i, 100.0f + i);
  const u8 rows[3] = {1, 4, 6};
  const u8 cols[3] = {5, 0, 2};
  for (u32 i = 0; i < 3; ++i) {
    machine.memory().write_u8(0x1000 + 2 * i, rows[i]);
    machine.memory().write_u8(0x1000 + 2 * i + 1, cols[i]);
    machine.memory().write_u32(0x1100 + 4 * i, std::bit_cast<u32>(1.0f));
  }
  machine.run(assemble(
      "li r1, 3\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x1100\n"
      "v_ldb vr1, vr2, r2, r3\n"
      "li r4, 0x2000\n"
      "v_gthc vr3, (r4), vr2\n"
      "halt\n"));
  EXPECT_FLOAT_EQ(std::bit_cast<float>(machine.vreg(3)[0]), 105.0f);
  EXPECT_FLOAT_EQ(std::bit_cast<float>(machine.vreg(3)[1]), 100.0f);
  EXPECT_FLOAT_EQ(std::bit_cast<float>(machine.vreg(3)[2]), 102.0f);
}

TEST(ExtensionOps, PositionalScatterAccumulateByRow) {
  Machine machine{MachineConfig{}};
  // Two entries in the same row must both accumulate.
  const u8 rows[3] = {2, 2, 5};
  const u8 cols[3] = {0, 1, 3};
  const float vals[3] = {1.5f, 2.0f, -4.0f};
  for (u32 i = 0; i < 3; ++i) {
    machine.memory().write_u8(0x1000 + 2 * i, rows[i]);
    machine.memory().write_u8(0x1000 + 2 * i + 1, cols[i]);
    machine.memory().write_u32(0x1100 + 4 * i, std::bit_cast<u32>(vals[i]));
  }
  machine.memory().write_f32(0x2000 + 4 * 2, 10.0f);  // pre-existing y[2]
  machine.memory().ensure(0x2000, 64);
  machine.run(assemble(
      "li r1, 3\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x1100\n"
      "v_ldb vr1, vr2, r2, r3\n"
      "li r4, 0x2000\n"
      "v_scar vr1, (r4), vr2\n"
      "halt\n"));
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 8), 13.5f);   // 10 + 1.5 + 2
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 20), -4.0f);  // y[5]
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 0), 0.0f);
}

TEST(ExtensionOps, IndexedScatterAccumulate) {
  // v_scax: the read-modify-write sibling of v_stx. Repeated indices in one
  // vector accumulate sequentially (lane order), like v_scar/v_scac.
  Machine machine{MachineConfig{}};
  for (u32 i = 0; i < 8; ++i) machine.memory().write_f32(0x2000 + 4 * i, 10.0f * i);
  const u32 idx[4] = {2, 5, 2, 0};
  const float add[4] = {1.5f, -4.0f, 2.0f, 0.25f};
  for (u32 i = 0; i < 4; ++i) {
    machine.memory().write_u32(0x1000 + 4 * i, idx[i]);
    machine.memory().write_f32(0x1100 + 4 * i, add[i]);
  }
  machine.run(assemble(
      "li r1, 4\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "v_ld vr1, (r2)\n"
      "li r3, 0x1100\n"
      "v_ld vr2, (r3)\n"
      "li r4, 0x2000\n"
      "v_scax vr2, (r4), vr1\n"
      "halt\n"));
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 8), 23.5f);   // 20 + 1.5 + 2
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 20), 46.0f);  // 50 - 4
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 0), 0.25f);
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x2000 + 4), 10.0f);   // untouched
}

TEST(ExtensionOps, IndexedScatterAccumulatePaysIndexedRate) {
  // v_scax streams one element per cycle like v_ldx/v_stx, not at the
  // positional ops' lane rate.
  auto cycles_of = [](const std::string& body) {
    Machine machine{MachineConfig{}};
    machine.memory().ensure(0, 1 << 16);
    return machine.run(assemble(body)).cycles;
  };
  const Cycle scax = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\n"
      "v_iota vr2\nli r4, 0x2000\nv_scax vr1, (r4), vr2\nhalt\n");
  const Cycle stx = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\n"
      "v_iota vr2\nli r4, 0x2000\nv_stx vr1, (r4), vr2\nhalt\n");
  EXPECT_EQ(scax, stx);
}

TEST(ExtensionOps, PositionalOpsRunAtLaneRate) {
  // v_gthc addresses a banked s-element window: 64 elements at p = 4 lanes
  // should cost far less than a general 64-element gather.
  auto cycles_of = [](const std::string& body) {
    Machine machine{MachineConfig{}};
    machine.memory().ensure(0, 1 << 16);
    return machine.run(assemble(body)).cycles;
  };
  const Cycle positional = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nli r3, 0x1200\n"
      "v_ldb vr1, vr2, r2, r3\nli r4, 0x2000\nv_gthc vr3, (r4), vr2\nhalt\n");
  const Cycle general = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nli r3, 0x1200\n"
      "v_ldb vr1, vr2, r2, r3\nli r4, 0x2000\nv_ldx vr3, (r4), vr2\nhalt\n");
  EXPECT_LT(positional + 40, general);
}

TEST(ExtensionOps, RunStatsSummaryMentionsUnits) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 12);
  const RunStats stats = machine.run(assemble(
      "li r1, 64\nssvl r1\nli r2, 0x100\nv_ld vr1, (r2)\nv_addi vr2, vr1, 1\nhalt\n"));
  const std::string summary = run_stats_summary(stats);
  EXPECT_NE(summary.find("cycles"), std::string::npos);
  EXPECT_NE(summary.find("vmem"), std::string::npos);
  EXPECT_NE(summary.find("valu"), std::string::npos);
  EXPECT_GT(stats.vmem_busy_cycles, 0u);
  EXPECT_GT(stats.valu_busy_cycles, 0u);
  EXPECT_EQ(stats.stm_busy_cycles, 0u);
}

}  // namespace
}  // namespace smtu::vsim
