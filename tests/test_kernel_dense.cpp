// Tests of the strided vector memory ops and the §II dense transpose kernel.
#include <gtest/gtest.h>

#include "formats/dense.hpp"
#include "kernels/dense_transpose.hpp"
#include "testing.hpp"
#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu {
namespace {

using testing::random_coo;

TEST(StridedOps, StridedLoadGathersColumn) {
  vsim::Machine machine{vsim::MachineConfig{}};
  // 4x5 row-major matrix of value r*10+c at 0x1000.
  for (u32 r = 0; r < 4; ++r) {
    for (u32 c = 0; c < 5; ++c) {
      machine.memory().write_u32(0x1000 + 4 * (r * 5 + c), r * 10 + c);
    }
  }
  machine.run(vsim::assemble(
      "li r1, 4\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 20\n"           // stride = 4 * cols
      "v_lds vr1, 8(r2), r3\n"  // column 2
      "halt\n"));
  EXPECT_EQ(machine.vreg(1)[0], 2u);
  EXPECT_EQ(machine.vreg(1)[1], 12u);
  EXPECT_EQ(machine.vreg(1)[2], 22u);
  EXPECT_EQ(machine.vreg(1)[3], 32u);
}

TEST(StridedOps, StridedStoreScattersColumn) {
  vsim::Machine machine{vsim::MachineConfig{}};
  machine.memory().ensure(0x2000, 256);
  machine.run(vsim::assemble(
      "li r1, 4\n"
      "ssvl r1\n"
      "v_iota vr1\n"
      "v_addi vr1, vr1, 100\n"
      "li r2, 0x2000\n"
      "li r3, 12\n"
      "v_sts vr1, (r2), r3\n"
      "halt\n"));
  EXPECT_EQ(machine.memory().read_u32(0x2000), 100u);
  EXPECT_EQ(machine.memory().read_u32(0x200c), 101u);
  EXPECT_EQ(machine.memory().read_u32(0x2018), 102u);
  EXPECT_EQ(machine.memory().read_u32(0x2024), 103u);
}

TEST(StridedOps, StridedCostsLikeIndexed) {
  // The §IV-A memory model: one 32-bit word per cycle for non-contiguous
  // access. A 64-element strided load must cost ~an indexed one.
  auto cycles_of = [](const std::string& body) {
    vsim::Machine machine{vsim::MachineConfig{}};
    machine.memory().ensure(0, 1 << 16);
    return machine.run(vsim::assemble(body)).cycles;
  };
  const Cycle strided = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nli r3, 8\nv_lds vr1, (r2), r3\nhalt\n");
  const Cycle contiguous = cycles_of(
      "li r1, 64\nssvl r1\nli r2, 0x1000\nv_ld vr1, (r2)\nhalt\n");
  EXPECT_GT(strided, contiguous + 40);
}

TEST(DenseKernel, TransposesSmallMatrix) {
  Dense dense(3, 5);
  float v = 1.0f;
  for (Index r = 0; r < 3; ++r) {
    for (Index c = 0; c < 5; ++c) dense.at(r, c) = v += 1.0f;
  }
  const auto result = kernels::run_dense_transpose(dense, {});
  EXPECT_EQ(result.transposed.rows(), 5u);
  EXPECT_EQ(result.transposed.cols(), 3u);
  EXPECT_EQ(result.transposed, dense.transposed());
}

TEST(DenseKernel, TransposesSparsePatternCorrectly) {
  Rng rng(1);
  const Coo coo = random_coo(70, 90, 600, rng);
  const Dense dense = Dense::from_coo(coo);
  const auto result = kernels::run_dense_transpose(dense, {});
  EXPECT_EQ(result.transposed, dense.transposed());
}

TEST(DenseKernel, CostIsDensityIndependent) {
  Rng rng(2);
  const Dense sparse = Dense::from_coo(random_coo(64, 64, 40, rng));
  const Dense full = Dense::from_coo(random_coo(64, 64, 4000, rng));
  const u64 sparse_cycles = kernels::time_dense_transpose(sparse, {}).cycles;
  const u64 full_cycles = kernels::time_dense_transpose(full, {}).cycles;
  EXPECT_EQ(sparse_cycles, full_cycles);
}

TEST(DenseKernel, CostScalesWithArea) {
  Rng rng(3);
  const Dense small = Dense::from_coo(random_coo(64, 64, 100, rng));
  const Dense large = Dense::from_coo(random_coo(128, 128, 100, rng));
  const u64 small_cycles = kernels::time_dense_transpose(small, {}).cycles;
  const u64 large_cycles = kernels::time_dense_transpose(large, {}).cycles;
  // 4x the elements: roughly 4x the cycles (strided path dominates).
  EXPECT_GT(large_cycles, 3 * small_cycles);
  EXPECT_LT(large_cycles, 6 * small_cycles);
}

}  // namespace
}  // namespace smtu
