// The RTL pipeline model vs the schedule engine: identical transposed
// output and cycle counts, with the 3+3-cycle pipeline tails emerging from
// explicit stage registers instead of being added as constants.
#include <gtest/gtest.h>

#include "stm/rtl.hpp"
#include "stm/unit.hpp"
#include "support/rng.hpp"

namespace smtu {
namespace {

std::vector<StmEntry> random_block(u32 section, usize count, u64 seed) {
  Rng rng(seed);
  std::vector<StmEntry> entries;
  for (const u64 cell :
       rng.sample_without_replacement(static_cast<u64>(section) * section, count)) {
    entries.push_back({static_cast<u8>(cell / section), static_cast<u8>(cell % section),
                       static_cast<u32>(cell + 1)});
  }
  return entries;
}

StmConfig make_config(u32 section, u32 bandwidth, u32 lines, bool strict = true) {
  StmConfig config;
  config.section = section;
  config.bandwidth = bandwidth;
  config.lines = lines;
  config.strict_consecutive_lines = strict;
  return config;
}

TEST(StmRtl, SingleElementLatencyIsThreePlusThree) {
  // One element: one accept cycle + 3 pipeline stages to commit, one
  // extract cycle + 3 stages to deliver: 1+3 + 1+3 = 8 total — exactly the
  // engine's W + R + 6 with W = R = 1.
  const auto entries = random_block(8, 1, 1);
  const auto result = StmRtl::run_block(entries, make_config(8, 4, 4));
  EXPECT_EQ(result.fill_cycles, 1u);
  EXPECT_EQ(result.drain_cycles, 1u);
  EXPECT_EQ(result.cycles, 8u);
}

TEST(StmRtl, PipelineMustDrainBeforeRead) {
  StmConfig config = make_config(8, 4, 4);
  StmRtl rtl(config);
  const auto entries = random_block(8, 4, 2);
  rtl.offer(entries);
  // Fill still in flight: the s x s memory cannot be read back yet (§III).
  EXPECT_DEATH(rtl.begin_drain(), "fill pipeline");
}

struct RtlCase {
  u32 section;
  u32 bandwidth;
  u32 lines;
  bool strict;
  usize count;
  u64 seed;
};

void PrintTo(const RtlCase& c, std::ostream* os) {
  *os << "s=" << c.section << " B=" << c.bandwidth << " L=" << c.lines
      << (c.strict ? " strict" : " relaxed") << " n=" << c.count;
}

class RtlEquivalence : public ::testing::TestWithParam<RtlCase> {};

TEST_P(RtlEquivalence, MatchesScheduleEngineExactly) {
  const RtlCase& param = GetParam();
  const StmConfig config =
      make_config(param.section, param.bandwidth, param.lines, param.strict);
  const auto entries = random_block(param.section, param.count, param.seed);

  StmUnit unit(config);
  const StmUnit::BlockResult engine = unit.transpose_block(entries);
  const StmRtl::Result rtl = StmRtl::run_block(entries, config);

  EXPECT_EQ(rtl.transposed, engine.transposed);
  EXPECT_EQ(rtl.fill_cycles, engine.write_cycles);
  EXPECT_EQ(rtl.drain_cycles, engine.read_cycles);
  EXPECT_EQ(rtl.cycles, engine.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtlEquivalence,
    ::testing::Values(RtlCase{8, 1, 1, true, 10, 1}, RtlCase{8, 4, 4, true, 20, 2},
                      RtlCase{16, 2, 2, true, 60, 3}, RtlCase{16, 4, 2, false, 90, 4},
                      RtlCase{32, 4, 4, true, 200, 5}, RtlCase{64, 4, 4, true, 50, 6},
                      RtlCase{64, 8, 8, true, 1000, 7}, RtlCase{64, 1, 4, true, 64, 8},
                      RtlCase{64, 4, 1, false, 300, 9}));

TEST(StmRtl, GridHoldsBlockBetweenPhases) {
  const StmConfig config = make_config(16, 4, 4);
  const auto entries = random_block(16, 40, 11);
  StmRtl rtl(config);
  usize index = 0;
  while (index < entries.size() || !rtl.pipeline_empty()) {
    if (index < entries.size()) {
      index += rtl.offer(std::span<const StmEntry>(entries).subspan(index));
    }
    rtl.step();
  }
  EXPECT_EQ(rtl.grid().occupancy(), entries.size());
}

TEST(StmRtlDeathTest, DoubleOfferWithoutStepAborts) {
  StmRtl rtl(make_config(8, 2, 2));
  const auto entries = random_block(8, 6, 12);
  rtl.offer(entries);
  EXPECT_DEATH(rtl.offer(entries), "one offer");
}

}  // namespace
}  // namespace smtu
