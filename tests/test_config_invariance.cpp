// Timing/functional separation: machine *timing* parameters (chaining,
// branch penalty, issue width, memory pipelining, STM bandwidth/lines) must
// never change architectural results — only cycle counts. Catches any
// accidental coupling between the resource-time model and execution.
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/spmv.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

std::vector<vsim::MachineConfig> timing_variants() {
  std::vector<vsim::MachineConfig> variants;
  {
    vsim::MachineConfig c;  // defaults
    variants.push_back(c);
  }
  {
    vsim::MachineConfig c;
    c.chaining = false;
    variants.push_back(c);
  }
  {
    vsim::MachineConfig c;
    c.mem_pipelined_startup = false;
    c.branch_penalty = 9;
    variants.push_back(c);
  }
  {
    vsim::MachineConfig c;
    c.scalar_issue_width = 1;
    c.scalar_load_latency = 25;
    c.mem_startup = 40;
    variants.push_back(c);
  }
  {
    vsim::MachineConfig c;
    c.stm.bandwidth = 1;
    c.stm.lines = 1;
    variants.push_back(c);
  }
  {
    vsim::MachineConfig c;
    c.stm.bandwidth = 8;
    c.stm.lines = 8;
    c.stm.strict_consecutive_lines = false;
    variants.push_back(c);
  }
  return variants;
}

TEST(ConfigInvariance, TransposeResultsIdenticalAcrossTimingConfigs) {
  Rng rng(77);
  const Coo coo = random_coo(200, 150, 1500, rng);
  const Coo expected = coo.transposed();
  const Csr csr = Csr::from_coo(coo);

  std::vector<Cycle> cycles_seen;
  for (const vsim::MachineConfig& config : timing_variants()) {
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const auto hism_result = kernels::run_hism_transpose(hism, config);
    EXPECT_TRUE(coo_equal(hism_result.transposed.to_coo(), expected));
    const auto crs_result = kernels::run_crs_transpose(csr, config);
    EXPECT_TRUE(coo_equal(crs_result.transposed, expected));
    cycles_seen.push_back(hism_result.stats.cycles);
  }
  // Sanity: the knobs do change *timing*.
  EXPECT_NE(cycles_seen.front(), cycles_seen[1]);
}

TEST(ConfigInvariance, SpmvResultsIdenticalAcrossTimingConfigs) {
  Rng rng(78);
  const Coo coo = random_coo(120, 120, 900, rng);
  std::vector<float> x(120);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> baseline;
  for (const vsim::MachineConfig& config : timing_variants()) {
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const auto result = kernels::run_hism_spmv(hism, x, config);
    if (baseline.empty()) {
      baseline = result.y;
    } else {
      // Bit-identical: same functional execution order regardless of timing.
      EXPECT_EQ(result.y, baseline);
    }
  }
}

TEST(ConfigInvariance, InstructionCountsAreTimingIndependent) {
  Rng rng(79);
  const Coo coo = random_coo(100, 100, 700, rng);
  u64 baseline_instructions = 0;
  for (const vsim::MachineConfig& config : timing_variants()) {
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const auto stats = kernels::time_hism_transpose(hism, config);
    if (baseline_instructions == 0) {
      baseline_instructions = stats.instructions;
    } else {
      EXPECT_EQ(stats.instructions, baseline_instructions);
    }
  }
}

}  // namespace
}  // namespace smtu
