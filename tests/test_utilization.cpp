// Tests of the STM utilization analysis (the quantity behind Fig. 10) and
// its parameter behaviour on controlled matrices.
#include <gtest/gtest.h>

#include "kernels/utilization.hpp"
#include "suite/generators.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using kernels::stm_utilization;
using kernels::UtilizationBreakdown;

StmConfig stm_config(u32 bandwidth, u32 lines) {
  StmConfig config;
  config.bandwidth = bandwidth;
  config.lines = lines;
  return config;
}

TEST(Utilization, DenseSingleBlockNearOneAtBandwidthOne) {
  // A full 16x16 block at B = 1: 2*256 transfers over 2*256 + 6 cycles.
  Coo coo(16, 16);
  for (Index r = 0; r < 16; ++r) {
    for (Index c = 0; c < 16; ++c) coo.add(r, c, 1.0f);
  }
  coo.canonicalize();
  const HismMatrix hism = HismMatrix::from_coo(coo, 16);
  const UtilizationBreakdown b = stm_utilization(hism, stm_config(1, 4));
  EXPECT_EQ(b.transfers, 512u);
  EXPECT_EQ(b.cycles, 512u + 6u);
  EXPECT_NEAR(b.utilization, 512.0 / 518.0, 1e-9);
}

TEST(Utilization, BlockPenaltyIsTheOnlyLossAtBandwidthOne) {
  // The paper's Fig. 10 commentary: at B = 1 utilization is below 100%
  // only because of the 6-cycle per-block penalty.
  Rng rng(1);
  const Coo coo = suite::gen_random_uniform(128, 128, 2000, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 16);
  const UtilizationBreakdown b = stm_utilization(hism, stm_config(1, 4));
  EXPECT_EQ(b.cycles, b.transfers + 6 * b.block_passes);
}

TEST(Utilization, DecreasesWithBandwidth) {
  Rng rng(2);
  const Coo coo = suite::gen_random_uniform(256, 256, 3000, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 64);
  double previous = 2.0;
  for (const u32 bandwidth : {1u, 2u, 4u, 8u}) {
    const double u = stm_utilization(hism, stm_config(bandwidth, 4)).utilization;
    EXPECT_LT(u, previous) << "B=" << bandwidth;
    previous = u;
  }
}

TEST(Utilization, IncreasesWithLines) {
  Rng rng(3);
  const Coo coo = suite::gen_random_uniform(256, 256, 3000, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 64);
  double previous = 0.0;
  for (const u32 lines : {1u, 2u, 4u, 8u}) {
    const double u = stm_utilization(hism, stm_config(4, lines)).utilization;
    EXPECT_GE(u, previous) << "L=" << lines;
    previous = u;
  }
}

TEST(Utilization, HigherLevelsContributeTwoPasses) {
  Rng rng(4);
  const Coo coo = suite::gen_random_uniform(64, 64, 300, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  ASSERT_EQ(hism.num_levels(), 2u);
  const UtilizationBreakdown b = stm_utilization(hism, stm_config(4, 4));
  // level-0 blocks once, the root twice (lengths + pointers).
  EXPECT_EQ(b.block_passes, hism.level(0).size() + 2u);
}

TEST(Utilization, EmptyMatrixIsZero) {
  const HismMatrix hism = HismMatrix::from_coo(Coo(64, 64), 8);
  const UtilizationBreakdown b = stm_utilization(hism, stm_config(4, 4));
  EXPECT_EQ(b.transfers, 0u);
  EXPECT_EQ(b.utilization, 0.0);
}

TEST(Utilization, DiagonalBlocksBenefitFromLines) {
  // A diagonal block has one element per row/column: with L = 1 every
  // element needs a cycle per phase; L = B = 4 quarters that.
  Rng rng(5);
  const Coo coo = suite::gen_diagonal(64, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 64);
  const double narrow = stm_utilization(hism, stm_config(4, 1)).utilization;
  const double wide = stm_utilization(hism, stm_config(4, 4)).utilization;
  EXPECT_GT(wide, 3.0 * narrow);
}

}  // namespace
}  // namespace smtu
