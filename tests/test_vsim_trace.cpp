#include <gtest/gtest.h>

#include <sstream>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"
#include "vsim/trace.hpp"

namespace smtu::vsim {
namespace {

TEST(Trace, RecordsOneEventPerInstruction) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 12);
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  const RunStats stats = machine.run(assemble(
      "li r1, 64\nssvl r1\nli r2, 0x100\nv_ld vr1, (r2)\nv_addi vr2, vr1, 1\nhalt\n"));
  EXPECT_EQ(trace.events().size(), stats.instructions);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, UnitsAreClassified) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 12);
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.run(assemble(
      "li r1, 8\nssvl r1\nli r2, 0x100\nicm\nv_ld vr1, (r2)\nv_addi vr2, vr1, 1\n"
      "v_iota vr3\n"  // distinct packed positions (rows 0..7, column 0)
      "v_stcr vr2, vr3\nhalt\n"));
  std::map<TraceUnit, int> counts;
  for (const TraceEvent& e : trace.events()) counts[e.unit]++;
  EXPECT_GE(counts[TraceUnit::kScalar], 3);
  EXPECT_EQ(counts[TraceUnit::kVMem], 1);
  EXPECT_EQ(counts[TraceUnit::kVAlu], 2);  // v_addi + v_iota
  EXPECT_EQ(counts[TraceUnit::kStm], 2);   // icm + v_stcr
}

TEST(Trace, TimesAreOrderedWithinEvents) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 12);
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.run(assemble(
      "li r1, 64\nssvl r1\nli r2, 0x100\nv_ld vr1, (r2)\nv_st vr1, 0x400(r2)\nhalt\n"));
  for (const TraceEvent& e : trace.events()) {
    EXPECT_LE(e.issue, e.start);
    EXPECT_LE(e.start, e.first);
    EXPECT_LE(e.first, e.last);
  }
}

TEST(Trace, ChainingVisibleInTheTrace) {
  // With chaining, the dependent store starts before the load completes.
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 12);
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.run(assemble(
      "li r1, 64\nssvl r1\nli r2, 0x100\nv_ld vr1, (r2)\nv_st vr1, 0x400(r2)\nhalt\n"));
  const TraceEvent* load = nullptr;
  const TraceEvent* store = nullptr;
  for (const TraceEvent& e : trace.events()) {
    if (e.op == Op::kVLd) load = &e;
    if (e.op == Op::kVSt) store = &e;
  }
  ASSERT_NE(load, nullptr);
  ASSERT_NE(store, nullptr);
  EXPECT_LT(store->start, load->last);  // overlap = chaining
  EXPECT_GE(store->start, load->first);
}

TEST(Trace, CapacityBoundsMemory) {
  Machine machine{MachineConfig{}};
  ExecutionTrace trace(8);
  machine.attach_trace(&trace);
  machine.run(assemble(
      "li r1, 20\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n"));
  EXPECT_EQ(trace.events().size(), 8u);
  EXPECT_GT(trace.dropped(), 0u);
}

TEST(Trace, ClearResets) {
  Machine machine{MachineConfig{}};
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.run(assemble("li r1, 1\nhalt\n"));
  EXPECT_FALSE(trace.events().empty());
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, RenderersProduceReadableOutput) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0, 1 << 12);
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.run(assemble(
      "li r1, 64\nssvl r1\nli r2, 0x100\nv_ld vr1, (r2)\nv_addi vr2, vr1, 1\nhalt\n"));

  std::ostringstream table;
  trace.print_table(table);
  EXPECT_NE(table.str().find("v_ld"), std::string::npos);
  EXPECT_NE(table.str().find("vmem"), std::string::npos);

  std::ostringstream timeline;
  trace.print_timeline(timeline);
  EXPECT_NE(timeline.str().find("M"), std::string::npos);  // vmem lane glyph
  EXPECT_NE(timeline.str().find("cycles 0 .."), std::string::npos);
}

TEST(Trace, DetachedMachineRecordsNothing) {
  Machine machine{MachineConfig{}};
  ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.attach_trace(nullptr);
  machine.run(assemble("li r1, 1\nhalt\n"));
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace smtu::vsim
