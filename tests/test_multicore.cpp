// The multi-core system: N=1 bit-identity with the owning Machine, the
// sharded parallel HiSM transpose, the parallel CRS baseline, determinism,
// and per-core profiler conservation (docs/MULTICORE.md).
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "kernels/crs_parallel.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/layout.hpp"
#include "kernels/shard.hpp"
#include "testing.hpp"
#include "vsim/assembler.hpp"
#include "vsim/profiler.hpp"
#include "vsim/system.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

vsim::SystemConfig system_config(u32 cores, u32 section = 64) {
  vsim::SystemConfig config;
  config.core.section = section;
  config.cores = cores;
  return config;
}

Coo test_matrix(u64 seed = 42) {
  Rng rng(seed);
  return random_coo(500, 300, 3000, rng);
}

// ---- N=1 degenerate case ---------------------------------------------------

TEST(MultiCoreSystem, SingleCoreBitIdenticalToOwningMachine) {
  // The identical HiSM transpose program, staged identically, run once on
  // the classic owning Machine and once on a 1-core system with the banked
  // memory model: every RunStats field must match bit for bit.
  const Coo coo = test_matrix();
  const vsim::MachineConfig config = system_config(1).core;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  ASSERT_GE(hism.num_levels(), 2u);

  vsim::Machine machine(config);
  const HismImage image = kernels::stage_hism(machine, hism);
  machine.set_sreg(1, image.root_addr);
  machine.set_sreg(2, image.root_len);
  machine.set_sreg(3, image.levels - 1);
  machine.set_sreg(vsim::kRegSp, kernels::kStackTop);
  const auto program = vsim::assemble(kernels::hism_transpose_source());
  const vsim::RunStats single = machine.run(program);

  vsim::MultiCoreSystem system(system_config(1));
  const HismImage sys_image = build_hism_image(hism, image.base);
  system.memory().write_block(sys_image.base, sys_image.bytes);
  system.core(0).set_sreg(1, sys_image.root_addr);
  system.core(0).set_sreg(2, sys_image.root_len);
  system.core(0).set_sreg(3, sys_image.levels - 1);
  system.core(0).set_sreg(vsim::kRegSp, kernels::kStackTop);
  const vsim::SystemRunStats multi = system.run(program);

  ASSERT_EQ(multi.core_stats.size(), 1u);
  const vsim::RunStats& core = multi.core_stats[0];
  EXPECT_EQ(core.cycles, single.cycles);
  EXPECT_EQ(core.instructions, single.instructions);
  EXPECT_EQ(core.scalar_instructions, single.scalar_instructions);
  EXPECT_EQ(core.vector_instructions, single.vector_instructions);
  EXPECT_EQ(core.vector_elements, single.vector_elements);
  EXPECT_EQ(core.mem_contiguous_bytes, single.mem_contiguous_bytes);
  EXPECT_EQ(core.mem_indexed_elements, single.mem_indexed_elements);
  EXPECT_EQ(core.stm_blocks, single.stm_blocks);
  EXPECT_EQ(core.stm_write_cycles, single.stm_write_cycles);
  EXPECT_EQ(core.stm_read_cycles, single.stm_read_cycles);
  EXPECT_EQ(core.stm_elements, single.stm_elements);
  EXPECT_EQ(core.vmem_busy_cycles, single.vmem_busy_cycles);
  EXPECT_EQ(core.valu_busy_cycles, single.valu_busy_cycles);
  EXPECT_EQ(core.stm_busy_cycles, single.stm_busy_cycles);
  EXPECT_EQ(multi.cycles, single.cycles);

  // A lone core must never see bank contention: that is the invariant the
  // bit-identity rests on.
  EXPECT_EQ(multi.memory.contended_requests, 0u);
  EXPECT_EQ(multi.memory.contention_cycles, 0u);
  EXPECT_GT(multi.memory.requests, 0u);

  // And the transposed images must agree byte for byte over the image.
  const auto machine_raw = machine.memory().raw();
  const auto system_raw = system.memory().raw();
  ASSERT_GE(machine_raw.size(), image.base + image.bytes.size());
  ASSERT_GE(system_raw.size(), image.base + image.bytes.size());
  EXPECT_TRUE(std::equal(machine_raw.begin() + image.base,
                         machine_raw.begin() + image.base + image.bytes.size(),
                         system_raw.begin() + image.base));
}

// ---- barrier and amo_add primitives ---------------------------------------

TEST(MultiCoreSystem, LoneMachineBarrierReleasesImmediately) {
  const auto program = vsim::assemble(R"asm(
    li    r1, 7
    barrier
    addi  r1, r1, 1
    halt
)asm");
  vsim::Machine machine{vsim::MachineConfig{}};
  const vsim::RunStats stats = machine.run(program);
  EXPECT_EQ(machine.sreg(1), 8u);
  EXPECT_GT(stats.cycles, 0u);
}

TEST(MultiCoreSystem, AmoAddReturnsOldValueAndAccumulates) {
  const auto program = vsim::assemble(R"asm(
    li    r1, 0x1000
    li    r2, 5
    sw    r2, 0(r1)
    li    r3, 3
    amo_add r4, r3, 0(r1)
    amo_add r5, r3, 0(r1)
    halt
)asm");
  vsim::Machine machine{vsim::MachineConfig{}};
  machine.run(program);
  EXPECT_EQ(machine.sreg(4), 5u);
  EXPECT_EQ(machine.sreg(5), 8u);
  EXPECT_EQ(machine.memory().read_u32(0x1000), 11u);
}

TEST(MultiCoreSystem, BarrierSynchronizesUnevenCores) {
  // Core 0 runs a long scalar chain before its barrier; core 1 arrives
  // almost immediately and must wait. Both resume at the same release.
  const auto program = vsim::assemble(R"asm(
    li    r2, 0
    beq   r1, r0, rendezvous
spin:
    addi  r2, r2, 1
    bne   r2, r1, spin
rendezvous:
    barrier
    halt
)asm");
  vsim::SystemConfig config = system_config(2);
  vsim::MultiCoreSystem system(config);
  system.core(0).set_sreg(1, 200);  // 200 spin iterations
  system.core(1).set_sreg(1, 0);

  std::vector<vsim::PerfCounters> profilers(2);
  system.attach_profiler(0, &profilers[0]);
  system.attach_profiler(1, &profilers[1]);
  const vsim::SystemRunStats stats = system.run(program);

  EXPECT_EQ(stats.barriers, 1u);
  EXPECT_EQ(stats.core_stats[0].cycles, stats.core_stats[1].cycles);
  // The idle core's wait is charged to the barrier_wait bucket.
  const u64 wait1 =
      profilers[1].stall_cycles()[static_cast<usize>(vsim::StallReason::kBarrierWait)];
  EXPECT_GT(wait1, 0u);
}

// ---- sharded HiSM transpose ------------------------------------------------

TEST(ShardedHismTranspose, MatchesReferenceAtAllCoreCounts) {
  const Coo coo = test_matrix();
  for (const u32 cores : {1u, 2u, 4u, 8u}) {
    const auto result = kernels::run_sharded_hism_transpose(coo, system_config(cores));
    EXPECT_TRUE(coo_equal(result.transposed, coo.transposed())) << cores << " cores";
    EXPECT_GT(result.stats.cycles, 0u);
    EXPECT_EQ(result.stats.barriers, 2u);
  }
}

TEST(ShardedHismTranspose, SmallSectionDeepHierarchy) {
  Rng rng(7);
  const Coo coo = random_coo(100, 90, 600, rng);
  for (const u32 cores : {2u, 4u}) {
    const auto result =
        kernels::run_sharded_hism_transpose(coo, system_config(cores, /*section=*/8));
    EXPECT_TRUE(coo_equal(result.transposed, coo.transposed())) << cores << " cores";
  }
}

TEST(ShardedHismTranspose, MoreCoresThanBlockRows) {
  // 20 rows at section 64 leaves a single top-level block row: every core
  // but one gets an empty panel and only rides the barriers.
  Rng rng(9);
  const Coo coo = random_coo(20, 20, 60, rng);
  const auto result = kernels::run_sharded_hism_transpose(coo, system_config(4));
  EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()));
}

TEST(ShardedHismTranspose, MultiCoreBeatsSingleCore) {
  const Coo coo = test_matrix(11);
  const Cycle one = kernels::time_sharded_hism_transpose(coo, system_config(1)).cycles;
  const Cycle four = kernels::time_sharded_hism_transpose(coo, system_config(4)).cycles;
  EXPECT_LT(four, one);
}

TEST(ShardedHismTranspose, DeterministicAcrossRuns) {
  const Coo coo = test_matrix(5);
  const vsim::SystemRunStats a = kernels::time_sharded_hism_transpose(coo, system_config(4));
  const vsim::SystemRunStats b = kernels::time_sharded_hism_transpose(coo, system_config(4));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.memory.contention_cycles, b.memory.contention_cycles);
  ASSERT_EQ(a.core_stats.size(), b.core_stats.size());
  for (usize c = 0; c < a.core_stats.size(); ++c) {
    EXPECT_EQ(a.core_stats[c].cycles, b.core_stats[c].cycles) << "core " << c;
    EXPECT_EQ(a.core_stats[c].instructions, b.core_stats[c].instructions) << "core " << c;
  }
}

TEST(ShardedHismTranspose, PerCoreProfilerConservation) {
  // Each core's PerfCounters must attribute every one of its cycles
  // (enforced by SMTU_CHECK in end_run; this exercises it with barriers
  // and bank contention in play) and agree with the reported core stats.
  const Coo coo = test_matrix(3);
  std::vector<vsim::PerfCounters> profilers;
  const vsim::SystemRunStats stats =
      kernels::time_sharded_hism_transpose(coo, system_config(4), &profilers);
  ASSERT_EQ(profilers.size(), 4u);
  for (u32 c = 0; c < 4; ++c) {
    EXPECT_EQ(profilers[c].total_cycles(), stats.core_stats[c].cycles) << "core " << c;
    EXPECT_EQ(profilers[c].attributed_cycles(), profilers[c].total_cycles()) << "core " << c;
  }
}

// ---- parallel CRS baseline -------------------------------------------------

TEST(ParallelCrsTranspose, MatchesReferenceAtAllCoreCounts) {
  const Coo coo = test_matrix();
  const Csr csr = Csr::from_coo(coo);
  for (const u32 cores : {1u, 2u, 4u, 8u}) {
    const auto result = kernels::run_parallel_crs_transpose(csr, system_config(cores));
    EXPECT_TRUE(coo_equal(result.transposed, coo.transposed())) << cores << " cores";
    EXPECT_EQ(result.stats.barriers, 5u);
  }
}

TEST(ParallelCrsTranspose, DeterministicAcrossRuns) {
  const Coo coo = test_matrix(13);
  const Csr csr = Csr::from_coo(coo);
  const vsim::SystemRunStats a =
      kernels::time_parallel_crs_transpose(csr, system_config(8));
  const vsim::SystemRunStats b =
      kernels::time_parallel_crs_transpose(csr, system_config(8));
  EXPECT_EQ(a.cycles, b.cycles);
  for (usize c = 0; c < a.core_stats.size(); ++c) {
    EXPECT_EQ(a.core_stats[c].cycles, b.core_stats[c].cycles) << "core " << c;
  }
}

TEST(ParallelCrsTranspose, RaggedShapes) {
  Rng rng(21);
  for (const auto& [rows, cols, nnz] : {std::tuple<Index, Index, usize>{1, 500, 400},
                                        {500, 1, 400},
                                        {37, 211, 900}}) {
    const Coo coo = random_coo(rows, cols, nnz, rng);
    const Csr csr = Csr::from_coo(coo);
    const auto result = kernels::run_parallel_crs_transpose(csr, system_config(4));
    EXPECT_TRUE(coo_equal(result.transposed, coo.transposed()))
        << rows << "x" << cols << "/" << nnz;
  }
}

}  // namespace
}  // namespace smtu
