#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "formats/ell.hpp"
#include "suite/generators.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

TEST(Ell, RoundTripRandom) {
  Rng rng(1);
  const Coo coo = random_coo(40, 60, 300, rng);
  const Ell ell = Ell::from_coo(coo);
  EXPECT_TRUE(ell.validate());
  EXPECT_TRUE(coo_equal(ell.to_coo(), coo));
}

TEST(Ell, WidthIsMaxRowLength) {
  const Coo coo = make_coo(4, 10,
                           {{0, 1, 1.0f},
                            {1, 0, 1.0f}, {1, 3, 1.0f}, {1, 7, 1.0f},
                            {3, 9, 1.0f}});
  const Ell ell = Ell::from_coo(coo);
  EXPECT_EQ(ell.width(), 3u);
  EXPECT_EQ(ell.col_idx().size(), 12u);
}

TEST(Ell, PaddingWasteOnSkewedRows) {
  // One dense row among sparse ones: fill ratio approaches rows.
  Coo coo(100, 200);
  for (Index c = 0; c < 200; ++c) coo.add(0, c, 1.0f);
  for (Index r = 1; r < 100; ++r) coo.add(r, r, 1.0f);
  coo.canonicalize();
  const Ell ell = Ell::from_coo(coo);
  EXPECT_EQ(ell.width(), 200u);
  EXPECT_GT(ell.fill_ratio(), 60.0);
}

TEST(Ell, UniformRowsWasteNothing) {
  Rng rng(2);
  const Coo coo = suite::gen_banded_rows(100, 8, 16, rng);
  const Ell ell = Ell::from_coo(coo);
  EXPECT_LE(ell.fill_ratio(), 1.01);
}

TEST(Ell, SpmvMatchesCsr) {
  Rng rng(3);
  const Coo coo = random_coo(50, 50, 400, rng);
  std::vector<float> x(50);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto y_ell = Ell::from_coo(coo).spmv(x);
  const auto y_csr = Csr::from_coo(coo).spmv(x);
  for (usize i = 0; i < 50; ++i) EXPECT_NEAR(y_ell[i], y_csr[i], 1e-4f);
}

TEST(Ell, EmptyMatrix) {
  const Ell ell = Ell::from_coo(Coo(10, 10));
  EXPECT_TRUE(ell.validate());
  EXPECT_EQ(ell.width(), 0u);
  EXPECT_EQ(ell.fill_ratio(), 0.0);
  EXPECT_TRUE(coo_equal(ell.to_coo(), Coo(10, 10)));
}

TEST(Ell, EmptyRowsAreAllPadding) {
  const Coo coo = make_coo(5, 5, {{2, 2, 1.0f}, {2, 4, 2.0f}});
  const Ell ell = Ell::from_coo(coo);
  EXPECT_TRUE(ell.validate());
  EXPECT_EQ(ell.col_idx()[0], Ell::kPad);  // row 0 fully padded
  EXPECT_TRUE(coo_equal(ell.to_coo(), coo));
}

}  // namespace
}  // namespace smtu
