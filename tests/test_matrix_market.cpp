#include <gtest/gtest.h>

#include <sstream>

#include "formats/matrix_market.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

TEST(MatrixMarket, WriteReadRoundTrip) {
  Rng rng(1);
  const Coo coo = random_coo(12, 9, 40, rng);
  std::stringstream stream;
  write_matrix_market(stream, coo, "round trip");
  EXPECT_TRUE(coo_equal(read_matrix_market(stream), coo));
}

TEST(MatrixMarket, ReadsCoordinateReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 2 1.5\n"
      "3 4 -2.0\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.rows(), 3u);
  EXPECT_EQ(coo.cols(), 4u);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0], (CooEntry{0, 1, 1.5f}));
  EXPECT_EQ(coo.entries()[1], (CooEntry{2, 3, -2.0f}));
}

TEST(MatrixMarket, ReadsPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const Coo coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_FLOAT_EQ(coo.entries()[0].value, 1.0f);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const Coo coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 3u);  // (1,0), (0,1) mirrored, (2,2) diagonal once
}

TEST(MatrixMarket, ExpandsSkewSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 1\n"
      "2 1 5.0\n");
  Coo coo = read_matrix_market(in);
  coo.canonicalize();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_FLOAT_EQ(coo.entries()[0].value, -5.0f);  // (0,1)
  EXPECT_FLOAT_EQ(coo.entries()[1].value, 5.0f);   // (1,0)
}

TEST(MatrixMarket, ReadsArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n0.0\n0.0\n4.0\n");
  const Coo coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0], (CooEntry{0, 0, 1.0f}));
  EXPECT_EQ(coo.entries()[1], (CooEntry{1, 1, 4.0f}));
}

TEST(MatrixMarket, RejectsComplex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 2.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedData) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsBadHeader) {
  std::istringstream in("%%NotMatrixMarket nope\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

}  // namespace
}  // namespace smtu
