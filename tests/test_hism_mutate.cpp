#include <gtest/gtest.h>

#include "hism/access.hpp"
#include "hism/mutate.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

TEST(HismMutate, SetIntoEmptyMatrix) {
  HismMatrix hism = HismMatrix::from_coo(Coo(100, 100), 8);
  hism_set(hism, 42, 17, 3.5f);
  EXPECT_TRUE(hism.validate());
  EXPECT_EQ(hism.nnz(), 1u);
  EXPECT_FLOAT_EQ(hism_get(hism, 42, 17).value(), 3.5f);
}

TEST(HismMutate, SetOverwritesExisting) {
  Rng rng(1);
  const Coo coo = random_coo(50, 50, 100, rng);
  HismMatrix hism = HismMatrix::from_coo(coo, 8);
  const CooEntry& target = coo.entries()[10];
  hism_set(hism, target.row, target.col, 9.0f);
  EXPECT_EQ(hism.nnz(), coo.nnz());
  EXPECT_FLOAT_EQ(hism_get(hism, target.row, target.col).value(), 9.0f);
  EXPECT_TRUE(hism.validate());
}

TEST(HismMutate, IncrementalBuildMatchesBulkBuild) {
  Rng rng(2);
  const Coo coo = random_coo(200, 150, 800, rng);
  HismMatrix incremental = HismMatrix::from_coo(Coo(200, 150), 8);
  for (const CooEntry& e : coo.entries()) {
    hism_set(incremental, e.row, e.col, e.value);
  }
  EXPECT_TRUE(incremental.validate());
  EXPECT_TRUE(coo_equal(incremental.to_coo(), coo));
}

TEST(HismMutate, RemoveExistingElement) {
  Rng rng(3);
  const Coo coo = random_coo(60, 60, 150, rng);
  HismMatrix hism = HismMatrix::from_coo(coo, 8);
  const CooEntry& target = coo.entries()[7];
  EXPECT_TRUE(hism_remove(hism, target.row, target.col));
  EXPECT_TRUE(hism.validate());
  EXPECT_EQ(hism.nnz(), coo.nnz() - 1);
  EXPECT_FALSE(hism_get(hism, target.row, target.col).has_value());
}

TEST(HismMutate, RemoveAbsentElementIsFalse) {
  HismMatrix hism = HismMatrix::from_coo(Coo(30, 30), 8);
  hism_set(hism, 3, 3, 1.0f);
  EXPECT_FALSE(hism_remove(hism, 4, 4));
  EXPECT_EQ(hism.nnz(), 1u);
}

TEST(HismMutate, RemoveAllElementsLeavesValidEmptyMatrix) {
  Rng rng(4);
  Coo coo = random_coo(90, 90, 200, rng);
  HismMatrix hism = HismMatrix::from_coo(coo, 8);
  for (const CooEntry& e : coo.entries()) {
    ASSERT_TRUE(hism_remove(hism, e.row, e.col));
    ASSERT_TRUE(hism.validate());
  }
  EXPECT_EQ(hism.nnz(), 0u);
  // Emptied blocks were pruned: only the (empty) root remains.
  for (u32 k = 0; k + 1 < hism.num_levels(); ++k) {
    EXPECT_TRUE(hism.level(k).empty()) << "level " << k;
  }
}

TEST(HismMutate, SetRemoveInterleavedRandomized) {
  Rng rng(5);
  HismMatrix hism = HismMatrix::from_coo(Coo(64, 64), 8);
  Coo shadow(64, 64);
  std::map<std::pair<Index, Index>, float> model;
  for (int step = 0; step < 500; ++step) {
    const Index r = rng.below(64);
    const Index c = rng.below(64);
    if (rng.chance(0.6)) {
      const float v = static_cast<float>(rng.uniform(0.1, 1.0));
      hism_set(hism, r, c, v);
      model[{r, c}] = v;
    } else {
      const bool removed = hism_remove(hism, r, c);
      EXPECT_EQ(removed, model.erase({r, c}) > 0);
    }
  }
  EXPECT_TRUE(hism.validate());
  Coo expected(64, 64);
  for (const auto& [key, v] : model) expected.add(key.first, key.second, v);
  expected.canonicalize();
  EXPECT_TRUE(coo_equal(hism.to_coo(), expected));
}

TEST(HismMutate, CompactIsIdempotent) {
  Rng rng(6);
  const Coo coo = random_coo(80, 80, 300, rng);
  HismMatrix hism = HismMatrix::from_coo(coo, 8);
  hism_compact(hism);
  const Coo once = hism.to_coo();
  hism_compact(hism);
  EXPECT_TRUE(coo_equal(hism.to_coo(), once));
  EXPECT_TRUE(hism.validate());
}

TEST(HismMutateDeathTest, ZeroValueAborts) {
  HismMatrix hism = HismMatrix::from_coo(Coo(8, 8), 8);
  EXPECT_DEATH(hism_set(hism, 0, 0, 0.0f), "zero");
}

TEST(HismMutateDeathTest, OutOfBoundsAborts) {
  HismMatrix hism = HismMatrix::from_coo(Coo(8, 8), 8);
  EXPECT_DEATH(hism_set(hism, 8, 0, 1.0f), "out of bounds");
  EXPECT_DEATH(hism_remove(hism, 0, 8), "out of bounds");
}

}  // namespace
}  // namespace smtu
