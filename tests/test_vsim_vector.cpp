// Functional tests of the vector unit: strip mining, memory ops, ALU ops,
// slides/reductions, and the HiSM/STM instruction extension.
#include <gtest/gtest.h>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu::vsim {
namespace {

TEST(VectorExec, ContiguousLoadStore) {
  Machine machine{MachineConfig{}};
  for (u32 i = 0; i < 64; ++i) machine.memory().write_u32(0x1000 + 4 * i, i * 10);
  machine.run(assemble(
      "li r1, 64\n"
      "ssvl r1\n"
      "li r2, 0x1000\n"
      "li r3, 0x2000\n"
      "v_ld vr1, (r2)\n"
      "v_st vr1, (r3)\n"
      "halt\n"));
  for (u32 i = 0; i < 64; ++i) {
    EXPECT_EQ(machine.memory().read_u32(0x2000 + 4 * i), i * 10);
  }
}

TEST(VectorExec, SsvlStripMines) {
  // ssvl r1 with r1 = 150 gives vl = 64, 64, 22 and decrements r1 to zero.
  Machine machine{MachineConfig{}};
  machine.set_sreg(1, 150);
  machine.run(assemble("ssvl r1\nhalt\n"));
  EXPECT_EQ(machine.vl(), 64u);
  EXPECT_EQ(machine.sreg(1), 86u);
}

TEST(VectorExec, SetvlReportsLength) {
  Machine machine{MachineConfig{}};
  machine.set_sreg(1, 20);
  machine.run(assemble("setvl r2, r1\nhalt\n"));
  EXPECT_EQ(machine.vl(), 20u);
  EXPECT_EQ(machine.sreg(1), 20u);  // setvl does not consume the counter
  EXPECT_EQ(machine.sreg(2), 20u);
}

TEST(VectorExec, GatherScatter) {
  Machine machine{MachineConfig{}};
  // table[i] = 100 + i; idx = {3, 1, 2, 0}
  for (u32 i = 0; i < 4; ++i) machine.memory().write_u32(0x1000 + 4 * i, 100 + i);
  const u32 idx[4] = {3, 1, 2, 0};
  for (u32 i = 0; i < 4; ++i) machine.memory().write_u32(0x2000 + 4 * i, idx[i]);
  machine.run(assemble(
      "li r1, 4\n"
      "ssvl r1\n"
      "li r2, 0x2000\n"
      "v_ld vr0, (r2)\n"
      "li r3, 0x1000\n"
      "v_ldx vr1, (r3), vr0\n"   // gather table[idx[i]]
      "li r4, 0x3000\n"
      "v_stx vr1, (r4), vr0\n"   // scatter back to idx positions
      "halt\n"));
  EXPECT_EQ(machine.vreg(1)[0], 103u);
  EXPECT_EQ(machine.vreg(1)[1], 101u);
  EXPECT_EQ(machine.vreg(1)[2], 102u);
  EXPECT_EQ(machine.vreg(1)[3], 100u);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(machine.memory().read_u32(0x3000 + 4 * i), 100 + i);
  }
}

TEST(VectorExec, IntegerAluAndBroadcast) {
  Machine machine{MachineConfig{}};
  machine.set_sreg(9, 1000);
  machine.run(assemble(
      "li r1, 8\n"
      "ssvl r1\n"
      "v_iota vr1\n"           // 0..7
      "v_addi vr2, vr1, 5\n"   // 5..12
      "v_adds vr3, vr1, r9\n"  // 1000..1007
      "v_bcasti vr4, 7\n"
      "v_add vr5, vr2, vr4\n"  // 12..19
      "v_sub vr6, vr5, vr1\n"  // all 12
      "v_mul vr7, vr1, vr1\n"  // squares
      "halt\n"));
  EXPECT_EQ(machine.vreg(2)[7], 12u);
  EXPECT_EQ(machine.vreg(3)[3], 1003u);
  EXPECT_EQ(machine.vreg(5)[0], 12u);
  EXPECT_EQ(machine.vreg(6)[5], 12u);
  EXPECT_EQ(machine.vreg(7)[6], 36u);
}

TEST(VectorExec, SlidesZeroFill) {
  Machine machine{MachineConfig{}};
  machine.run(assemble(
      "li r1, 8\n"
      "ssvl r1\n"
      "v_iota vr1\n"
      "v_slideup vr2, vr1, 2\n"
      "v_slidedown vr3, vr1, 3\n"
      "halt\n"));
  EXPECT_EQ(machine.vreg(2)[0], 0u);
  EXPECT_EQ(machine.vreg(2)[1], 0u);
  EXPECT_EQ(machine.vreg(2)[2], 0u);  // vr1[0]
  EXPECT_EQ(machine.vreg(2)[7], 5u);
  EXPECT_EQ(machine.vreg(3)[0], 3u);
  EXPECT_EQ(machine.vreg(3)[4], 7u);
  EXPECT_EQ(machine.vreg(3)[5], 0u);
}

TEST(VectorExec, InPlaceSlideScanPattern) {
  // The scan kernel slides a register onto itself: vr1 += slide(vr1).
  Machine machine{MachineConfig{}};
  machine.run(assemble(
      "li r1, 8\n"
      "ssvl r1\n"
      "v_bcasti vr1, 1\n"
      "v_slideup vr2, vr1, 1\n"
      "v_add vr1, vr1, vr2\n"
      "v_slideup vr2, vr1, 2\n"
      "v_add vr1, vr1, vr2\n"
      "v_slideup vr2, vr1, 4\n"
      "v_add vr1, vr1, vr2\n"
      "halt\n"));
  // Inclusive scan of all-ones = 1..8.
  for (u32 i = 0; i < 8; ++i) EXPECT_EQ(machine.vreg(1)[i], i + 1);
}

TEST(VectorExec, ReductionAndExtract) {
  Machine machine{MachineConfig{}};
  machine.set_sreg(5, 3);
  machine.run(assemble(
      "li r1, 10\n"
      "ssvl r1\n"
      "v_iota vr1\n"
      "v_redsum r2, vr1\n"     // 0+..+9 = 45
      "v_extract r3, vr1, r5\n"
      "halt\n"));
  EXPECT_EQ(machine.sreg(2), 45u);
  EXPECT_EQ(machine.sreg(3), 3u);
}

TEST(VectorExec, FloatOps) {
  Machine machine{MachineConfig{}};
  machine.memory().write_f32(0x100, 1.5f);
  machine.memory().write_f32(0x104, -2.0f);
  machine.run(assemble(
      "li r1, 2\n"
      "ssvl r1\n"
      "li r2, 0x100\n"
      "v_ld vr1, (r2)\n"
      "v_fadd vr2, vr1, vr1\n"
      "v_fmul vr3, vr1, vr1\n"
      "li r3, 0x200\n"
      "v_st vr2, (r3)\n"
      "v_st vr3, 8(r3)\n"
      "halt\n"));
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x200), 3.0f);
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x204), -4.0f);
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x208), 2.25f);
  EXPECT_FLOAT_EQ(machine.memory().read_f32(0x20c), 4.0f);
}

TEST(VectorExec, StmRoundTripThroughSxsMemory) {
  // Write a tiny block-array image, push it through icm/v_ldb/v_stcr, drain
  // with v_ldcc/v_stb, and check the in-memory image is the transposed
  // block. Entries: (0,3)=10, (2,1)=20, (2,5)=30 in an 8x8 block (s = 64
  // machine still transposes within its s x s memory).
  Machine machine{MachineConfig{}};
  vsim::Memory& mem = machine.memory();
  const Addr pos = 0x1000;
  const Addr val = 0x1008;  // align4(2*3) = 8
  const u8 rows[3] = {0, 2, 2};
  const u8 cols[3] = {3, 1, 5};
  for (u32 i = 0; i < 3; ++i) {
    mem.write_u8(pos + 2 * i, rows[i]);
    mem.write_u8(pos + 2 * i + 1, cols[i]);
    mem.write_u32(val + 4 * i, (i + 1) * 10);
  }
  machine.run(assemble(
      "li r1, 3\n"
      "ssvl r1\n"
      "icm\n"
      "li r2, 0x1000\n"
      "li r3, 0x1008\n"
      "v_ldb vr1, vr2, r2, r3\n"
      "v_stcr vr1, vr2\n"
      "li r2, 0x1000\n"
      "li r3, 0x1008\n"
      "li r1, 3\n"
      "ssvl r1\n"
      "v_ldcc vr1, vr2\n"
      "v_stb vr1, vr2, r2, r3\n"
      "halt\n"));
  // Transposed, row-major: (1,2)=20, (3,0)=10, (5,2)=30.
  EXPECT_EQ(mem.read_u8(pos + 0), 1u);
  EXPECT_EQ(mem.read_u8(pos + 1), 2u);
  EXPECT_EQ(mem.read_u32(val + 0), 20u);
  EXPECT_EQ(mem.read_u8(pos + 2), 3u);
  EXPECT_EQ(mem.read_u8(pos + 3), 0u);
  EXPECT_EQ(mem.read_u32(val + 4), 10u);
  EXPECT_EQ(mem.read_u8(pos + 4), 5u);
  EXPECT_EQ(mem.read_u8(pos + 5), 2u);
  EXPECT_EQ(mem.read_u32(val + 8), 30u);
}

TEST(VectorExec, VLdbAutoIncrementsPointers) {
  Machine machine{MachineConfig{}};
  machine.memory().ensure(0x1000, 0x1000);
  machine.run(assemble(
      "li r1, 10\n"
      "ssvl r1\n"
      "icm\n"
      "li r2, 0x1000\n"
      "li r3, 0x1100\n"
      "v_ldb vr1, vr2, r2, r3\n"
      "halt\n"));
  EXPECT_EQ(machine.sreg(2), 0x1000u + 20u);  // 2 bytes per position pair
  EXPECT_EQ(machine.sreg(3), 0x1100u + 40u);  // 4 bytes per value
}

TEST(VectorExec, VStbvStoresValuesOnly) {
  Machine machine{MachineConfig{}};
  vsim::Memory& mem = machine.memory();
  // One entry (4,6)=77 through the unit; v_stbv must write 77 and leave the
  // position bytes untouched.
  mem.write_u8(0x1000, 4);
  mem.write_u8(0x1001, 6);
  mem.write_u32(0x1004, 77);
  machine.run(assemble(
      "li r1, 1\n"
      "ssvl r1\n"
      "icm\n"
      "li r2, 0x1000\n"
      "li r3, 0x1004\n"
      "v_ldb vr1, vr2, r2, r3\n"
      "v_stcr vr1, vr2\n"
      "li r3, 0x1004\n"
      "li r1, 1\n"
      "ssvl r1\n"
      "v_ldcc vr1, vr2\n"
      "v_stbv vr1, r3\n"
      "halt\n"));
  EXPECT_EQ(mem.read_u8(0x1000), 4u);  // position bytes unchanged
  EXPECT_EQ(mem.read_u8(0x1001), 6u);
  EXPECT_EQ(mem.read_u32(0x1004), 77u);
  EXPECT_EQ(machine.sreg(3), 0x1008u);
}

}  // namespace
}  // namespace smtu::vsim
