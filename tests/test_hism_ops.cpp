#include <gtest/gtest.h>

#include "hism/ops.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

Coo coo_add(const Coo& a, const Coo& b) {
  Coo sum(a.rows(), a.cols());
  for (const CooEntry& e : a.entries()) sum.entries().push_back(e);
  for (const CooEntry& e : b.entries()) sum.entries().push_back(e);
  sum.canonicalize();
  return sum;
}

TEST(HismOps, AddDisjointMatrices) {
  const Coo a = make_coo(20, 20, {{0, 0, 1.0f}, {5, 7, 2.0f}});
  const Coo b = make_coo(20, 20, {{1, 1, 3.0f}, {15, 3, 4.0f}});
  const HismMatrix sum = hism_add(HismMatrix::from_coo(a, 8), HismMatrix::from_coo(b, 8));
  EXPECT_TRUE(sum.validate());
  EXPECT_TRUE(coo_equal(sum.to_coo(), coo_add(a, b)));
}

TEST(HismOps, AddOverlappingSums) {
  const Coo a = make_coo(10, 10, {{2, 3, 1.5f}, {4, 4, 1.0f}});
  const Coo b = make_coo(10, 10, {{2, 3, 2.5f}, {9, 9, -1.0f}});
  const HismMatrix sum = hism_add(HismMatrix::from_coo(a, 8), HismMatrix::from_coo(b, 8));
  const Coo result = sum.to_coo();
  EXPECT_TRUE(coo_equal(result, coo_add(a, b)));
}

TEST(HismOps, AddCancellationDropsElementsAndBlocks) {
  // a and b cancel exactly in one block; that block-array must vanish.
  const Coo a = make_coo(64, 64, {{0, 0, 2.0f}, {40, 40, 1.0f}});
  const Coo b = make_coo(64, 64, {{0, 0, -2.0f}, {41, 41, 1.0f}});
  const HismMatrix sum = hism_add(HismMatrix::from_coo(a, 8), HismMatrix::from_coo(b, 8));
  EXPECT_TRUE(sum.validate());
  EXPECT_EQ(sum.nnz(), 2u);
  EXPECT_TRUE(coo_equal(sum.to_coo(), coo_add(a, b)));
}

TEST(HismOps, AddRandomMultiLevel) {
  Rng rng(1);
  const Coo a = random_coo(300, 300, 1500, rng);
  const Coo b = random_coo(300, 300, 1500, rng);
  const HismMatrix sum = hism_add(HismMatrix::from_coo(a, 8), HismMatrix::from_coo(b, 8));
  EXPECT_TRUE(sum.validate());
  EXPECT_TRUE(coo_equal(sum.to_coo(), coo_add(a, b)));
}

TEST(HismOps, AddWithEmptyIsIdentity) {
  Rng rng(2);
  const Coo a = random_coo(100, 100, 400, rng);
  const HismMatrix empty = HismMatrix::from_coo(Coo(100, 100), 8);
  const HismMatrix sum = hism_add(HismMatrix::from_coo(a, 8), empty);
  EXPECT_TRUE(coo_equal(sum.to_coo(), a));
}

TEST(HismOps, AddIsCommutative) {
  Rng rng(3);
  const Coo a = random_coo(120, 90, 600, rng);
  const Coo b = random_coo(120, 90, 600, rng);
  const HismMatrix ab = hism_add(HismMatrix::from_coo(a, 16), HismMatrix::from_coo(b, 16));
  const HismMatrix ba = hism_add(HismMatrix::from_coo(b, 16), HismMatrix::from_coo(a, 16));
  EXPECT_TRUE(coo_equal(ab.to_coo(), ba.to_coo()));
}

TEST(HismOps, ScaleMultipliesValuesOnly) {
  Rng rng(4);
  const Coo a = random_coo(50, 50, 200, rng);
  const HismMatrix scaled = hism_scale(HismMatrix::from_coo(a, 8), 2.5f);
  EXPECT_TRUE(scaled.validate());
  Coo expected = a;
  for (CooEntry& e : expected.entries()) e.value *= 2.5f;
  EXPECT_TRUE(coo_equal(scaled.to_coo(), expected));
}

TEST(HismOps, ScaleByZeroIsEmpty) {
  Rng rng(5);
  const Coo a = random_coo(50, 50, 200, rng);
  const HismMatrix zero = hism_scale(HismMatrix::from_coo(a, 8), 0.0f);
  EXPECT_EQ(zero.nnz(), 0u);
  EXPECT_TRUE(zero.validate());
}

TEST(HismOpsDeathTest, MismatchedShapesAbort) {
  const HismMatrix a = HismMatrix::from_coo(Coo(10, 10), 8);
  const HismMatrix b = HismMatrix::from_coo(Coo(10, 20), 8);
  const HismMatrix c = HismMatrix::from_coo(Coo(10, 10), 16);
  EXPECT_DEATH(hism_add(a, b), "dimensions");
  EXPECT_DEATH(hism_add(a, c), "section");
}

}  // namespace
}  // namespace smtu
