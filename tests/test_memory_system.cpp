// The banked MemorySystem: address interleaving, per-bank occupancy,
// contention pushback, and the single-requester no-contention invariant the
// N=1 multi-core bit-identity rests on (docs/MULTICORE.md).
#include <gtest/gtest.h>

#include "vsim/memory_system.hpp"

namespace smtu::vsim {
namespace {

MemorySystemConfig small_config() {
  MemorySystemConfig config;
  config.banks = 2;
  config.bank_bytes_per_cycle = 4;
  config.interleave_bytes = 4;
  return config;
}

TEST(MemorySystem, UncontendedRequestGrantsAtEarliest) {
  MemorySystem memsys{MemorySystemConfig{}};
  EXPECT_EQ(memsys.request(0, 16, 10), 10u);
  EXPECT_EQ(memsys.stats().requests, 1u);
  EXPECT_EQ(memsys.stats().contended_requests, 0u);
  EXPECT_EQ(memsys.stats().contention_cycles, 0u);
}

TEST(MemorySystem, OverlappingRequestsToSameBanksContend) {
  // Two banks, 4 B/bank/cycle. A 8-byte request occupies both banks for one
  // cycle; an immediately following overlapping request is pushed back.
  MemorySystem memsys{small_config()};
  EXPECT_EQ(memsys.request(0, 8, 0), 0u);
  EXPECT_EQ(memsys.request(0, 8, 0), 1u);
  EXPECT_EQ(memsys.stats().requests, 2u);
  EXPECT_EQ(memsys.stats().contended_requests, 1u);
  EXPECT_EQ(memsys.stats().contention_cycles, 1u);
}

TEST(MemorySystem, InterleavingSpreadsChunksAcrossBanks) {
  // A 4-byte request starting at address 4 touches only bank 1; bank 0
  // stays free for a concurrent request.
  MemorySystem memsys{small_config()};
  EXPECT_EQ(memsys.request(4, 4, 0), 0u);
  EXPECT_EQ(memsys.request(0, 4, 0), 0u);  // bank 0: no contention
  EXPECT_EQ(memsys.request(4, 4, 0), 1u);  // bank 1 again: pushed back
  EXPECT_EQ(memsys.stats().contended_requests, 1u);
}

TEST(MemorySystem, LongRequestOccupiesBanksProportionally) {
  // 32 bytes over 2 banks at 4 B/bank/cycle: 4 chunks per bank, 4 cycles
  // of occupancy each. The next request sees both banks busy until t=4.
  MemorySystem memsys{small_config()};
  EXPECT_EQ(memsys.request(0, 32, 0), 0u);
  EXPECT_EQ(memsys.request(0, 4, 0), 4u);
  EXPECT_EQ(memsys.stats().contention_cycles, 4u);
}

TEST(MemorySystem, SerializedRequestsNeverContend) {
  // The single-core invariant: when consecutive requests are spaced by at
  // least their own duration (as one vector memory pipe guarantees), bank
  // occupancy has always expired — zero contention, any access pattern.
  MemorySystem memsys{MemorySystemConfig{}};
  const MemorySystemConfig config{};
  const u64 aggregate = static_cast<u64>(config.banks) * config.bank_bytes_per_cycle;
  ASSERT_GE(aggregate, 16u);  // >= the default core's mem_bytes_per_cycle
  Cycle clock = 0;
  for (u32 i = 0; i < 64; ++i) {
    const u64 bytes = 4ull * (1 + i % 64);
    const Cycle duration = (bytes + 15) / 16;  // the core's streaming rate
    EXPECT_EQ(memsys.request(4 * (i % 128), bytes, clock), clock);
    clock += duration;
  }
  EXPECT_EQ(memsys.stats().contended_requests, 0u);
  EXPECT_EQ(memsys.stats().contention_cycles, 0u);
}

TEST(MemorySystem, ResetTimingClearsOccupancyAndStats) {
  MemorySystem memsys{small_config()};
  memsys.request(0, 32, 0);
  memsys.request(0, 4, 0);
  ASSERT_GT(memsys.stats().contention_cycles, 0u);
  memsys.reset_timing();
  EXPECT_EQ(memsys.request(0, 4, 0), 0u);
  EXPECT_EQ(memsys.stats().requests, 1u);
  EXPECT_EQ(memsys.stats().contention_cycles, 0u);
}

TEST(MemorySystem, SharedMemoryIsFunctional) {
  MemorySystem memsys{MemorySystemConfig{}};
  memsys.memory().write_u32(0x100, 42);
  EXPECT_EQ(memsys.memory().read_u32(0x100), 42u);
}

TEST(MemorySystemDeathTest, BankCountMustBePowerOfTwo) {
  MemorySystemConfig config;
  config.banks = 3;
  EXPECT_DEATH(MemorySystem{config}, "power of two");
}

}  // namespace
}  // namespace smtu::vsim
