// Precise scalar-core timing arithmetic: hand-computed cycle counts for
// issue width, memory ports, load latency stalls, and branch penalties.
// These pin the model that prices the CRS baseline's scalar phase.
#include <gtest/gtest.h>

#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu::vsim {
namespace {

Cycle cycles_of(const std::string& source, const MachineConfig& config) {
  Machine machine(config);
  machine.memory().ensure(0, 1 << 16);
  return machine.run(assemble(source)).cycles;
}

MachineConfig quiet_config() {
  MachineConfig config;
  config.branch_penalty = 0;
  config.scalar_load_latency = 1;
  return config;
}

TEST(ScalarTiming, IndependentOpsPackToIssueWidth) {
  // 12 independent li on a 4-wide core issue in groups of four at cycles
  // 0,1,2; the last result is ready at 3 (halt shares the last slot group).
  MachineConfig config = quiet_config();
  std::string source;
  for (int i = 1; i <= 12; ++i) {
    source += "li r" + std::to_string(i) + ", " + std::to_string(i) + "\n";
  }
  source += "halt\n";
  EXPECT_EQ(cycles_of(source, config), 3u);

  // Single-issue: the 12th li issues at cycle 11, result ready at 12.
  config.scalar_issue_width = 1;
  EXPECT_EQ(cycles_of(source, config), 12u);
}

TEST(ScalarTiming, DependentChainSerializesAtOpLatency) {
  // add chain of length 8: each must wait the previous result (latency 1):
  // issues at cycles 1..8, result of the last at 9... halt issues with it.
  MachineConfig config = quiet_config();
  std::string source = "li r1, 0\n";
  for (int i = 0; i < 8; ++i) source += "addi r1, r1, 1\n";
  source += "halt\n";
  // li at 0, addi_k at k (waits r1 from k-1), last result at 8+1.
  EXPECT_EQ(cycles_of(source, config), 9u);
}

TEST(ScalarTiming, LoadLatencyStallsConsumersExactly) {
  MachineConfig config = quiet_config();
  config.scalar_load_latency = 12;
  const std::string source =
      "li r1, 0x100\n"
      "lw r2, (r1)\n"     // issues at 1 (needs r1 from cycle 0+1), ready 1+12
      "addi r3, r2, 1\n"  // issues at 13, ready 14
      "halt\n";
  EXPECT_EQ(cycles_of(source, config), 14u);
}

TEST(ScalarTiming, MemoryPortsLimitParallelLoads) {
  // 8 independent loads, 2 ports: 4 cycles of load issue minimum.
  MachineConfig config = quiet_config();
  config.scalar_load_latency = 1;
  std::string source = "li r1, 0x100\n";
  for (int i = 2; i <= 9; ++i) {
    source += "lw r" + std::to_string(i) + ", " + std::to_string(4 * i) + "(r1)\n";
  }
  source += "halt\n";
  const Cycle two_ports = cycles_of(source, config);

  config.scalar_mem_ports = 8;
  const Cycle many_ports = cycles_of(source, config);
  EXPECT_GE(two_ports, many_ports + 2);
}

TEST(ScalarTiming, BranchPenaltyPerTakenBranchExactly) {
  // A counted loop of N iterations with one taken branch per iteration.
  const std::string source =
      "li r1, 10\n"
      "loop: addi r1, r1, -1\n"
      "bne r1, r0, loop\n"
      "halt\n";
  MachineConfig config = quiet_config();
  const Cycle base = cycles_of(source, config);
  config.branch_penalty = 5;
  // 9 taken branches (the last bne falls through).
  EXPECT_EQ(cycles_of(source, config), base + 9 * 5);
}

TEST(ScalarTiming, UntakenBranchesCostNoPenalty) {
  MachineConfig config = quiet_config();
  config.branch_penalty = 50;
  // beq never taken: the penalty knob must not matter.
  const std::string source =
      "li r1, 1\nli r2, 2\n"
      "beq r1, r2, nowhere\n"
      "beq r1, r2, nowhere\n"
      "nowhere: halt\n";
  MachineConfig no_penalty = quiet_config();
  EXPECT_EQ(cycles_of(source, config), cycles_of(source, no_penalty));
}

TEST(ScalarTiming, MulLatencyApplies) {
  MachineConfig config = quiet_config();
  config.mul_latency = 9;
  const std::string source =
      "li r1, 3\nli r2, 4\n"
      "mul r3, r1, r2\n"   // issues at 1, ready 10
      "addi r4, r3, 1\n"   // issues at 10, ready 11
      "halt\n";
  EXPECT_EQ(cycles_of(source, config), 11u);
}

TEST(ScalarTiming, HistogramLoopCostMatchesModel) {
  // The CRS phase-1 inner loop at defaults: the per-iteration cost the
  // reproduction's speedups depend on. Pin it to a band so accidental
  // model changes surface.
  MachineConfig config;  // defaults: width 4, load latency 8, penalty 2
  Machine machine(config);
  machine.memory().ensure(0, 1 << 16);
  const u32 n = 200;
  for (u32 i = 0; i < n; ++i) machine.memory().write_u32(0x1000 + 4 * i, i % 32);
  const RunStats stats = machine.run(assemble(
      "li r1, 0x1000\n"
      "li r2, 200\n"
      "li r3, 0x4000\n"
      "loop:\n"
      "lw r4, (r1)\n"
      "slli r4, r4, 2\n"
      "add r4, r4, r3\n"
      "lw r5, (r4)\n"
      "addi r5, r5, 1\n"
      "sw r5, (r4)\n"
      "addi r1, r1, 4\n"
      "addi r2, r2, -1\n"
      "bne r2, r0, loop\n"
      "halt\n"));
  const double per_element = static_cast<double>(stats.cycles) / n;
  EXPECT_GT(per_element, 10.0);
  EXPECT_LT(per_element, 30.0);
}

}  // namespace
}  // namespace smtu::vsim
