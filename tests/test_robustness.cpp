// Robustness tests: malformed inputs must produce clean diagnostics
// (AssemblyError / std::runtime_error / SMTU_CHECK aborts), never crashes
// or silent corruption.
#include <gtest/gtest.h>

#include <sstream>

#include "formats/matrix_market.hpp"
#include "support/rng.hpp"
#include "vsim/assembler.hpp"
#include "vsim/machine.hpp"

namespace smtu {
namespace {

TEST(AssemblerRobustness, GarbageLinesRaiseNotCrash) {
  const char* cases[] = {
      "add",                        // missing operands
      "add r1 r2 r3 r4 r5",         // too many (whitespace split)
      "li r1",                      // missing immediate
      "li r1, banana",              // bad immediate
      "lw r1, (r2",                 // unbalanced parens
      "lw r1, )r2(",                // reversed parens
      "v_ld vr1, r2",               // missing memory operand form
      "v_ldb vr1, vr2, vr3, vr4",   // scalar regs expected
      "beq r1, r2",                 // missing label
      "jal",                        // missing label
      ":",                          // empty label
      "lone:\n  bne r1, r0, gone",  // undefined target
      "mv r1, v r2",                // junk register
      "addi r1, r2, 0x",            // truncated hex
      "ssvl vr1",                   // vector reg where scalar expected
  };
  for (const char* source : cases) {
    EXPECT_THROW(vsim::assemble(std::string(source) + "\nhalt\n"), vsim::AssemblyError)
        << "source: " << source;
  }
}

TEST(AssemblerRobustness, RandomTokenSoupNeverCrashes) {
  // Fuzz-ish: random printable junk must either assemble (unlikely) or
  // throw AssemblyError — never crash.
  Rng rng(42);
  const char alphabet[] = "abcdefgr v,()0123456789:_#-";
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    const usize length = 1 + rng.below(60);
    for (usize i = 0; i < length; ++i) {
      source += alphabet[rng.below(sizeof(alphabet) - 1)];
      if (rng.chance(0.1)) source += '\n';
    }
    try {
      (void)vsim::assemble(source);
    } catch (const vsim::AssemblyError&) {
      // expected for junk
    }
  }
  SUCCEED();
}

TEST(AssemblerRobustness, ValidProgramsAcceptAnyWhitespace) {
  const vsim::Program p = vsim::assemble(
      "\t\tli\t r1 ,  7\n"
      "   loop:bne r1,r0,end\n"
      "end:   halt\n");
  EXPECT_EQ(p.size(), 3u);
}

TEST(MatrixMarketRobustness, MalformedInputsThrowWithLineNumbers) {
  const char* cases[] = {
      "",                                                     // empty
      "%%MatrixMarket\n",                                     // short header
      "%%MatrixMarket matrix coordinate real general\n",      // no size line
      "%%MatrixMarket matrix coordinate real general\nx y z\n",
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",   // arity
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n", // 0-index
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
      "%%MatrixMarket matrix array real general\n2 2\n1.0\n",  // truncated
      "%%MatrixMarket matrix coordinate hermitian general\n1 1 0\n",
  };
  for (const char* source : cases) {
    std::istringstream in(source);
    EXPECT_THROW(read_matrix_market(in), std::runtime_error) << source;
  }
}

TEST(MachineRobustness, RerunningAProgramIsDeterministic) {
  vsim::Machine machine{vsim::MachineConfig{}};
  const vsim::Program program = vsim::assemble(
      "li r1, 100\nli r2, 0\nloop: add r2, r2, r1\naddi r1, r1, -1\n"
      "bne r1, r0, loop\nhalt\n");
  const vsim::RunStats first = machine.run(program);
  const u64 result_first = machine.sreg(2);
  machine.set_sreg(2, 0);
  const vsim::RunStats second = machine.run(program);
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(result_first, machine.sreg(2));
}

TEST(MachineRobustness, MemoryPersistsAcrossRuns) {
  vsim::Machine machine{vsim::MachineConfig{}};
  machine.run(vsim::assemble("li r1, 0x500\nli r2, 77\nsw r2, (r1)\nhalt\n"));
  machine.run(vsim::assemble("li r1, 0x500\nlw r3, (r1)\nhalt\n"));
  EXPECT_EQ(machine.sreg(3), 77u);
}

TEST(MachineRobustness, EntryLabelSelectsStartPoint) {
  vsim::Machine machine{vsim::MachineConfig{}};
  const vsim::Program program = vsim::assemble(
      "alpha: li r1, 1\nhalt\n"
      "beta: li r1, 2\nhalt\n");
  machine.run(program, program.label("beta"));
  EXPECT_EQ(machine.sreg(1), 2u);
}

TEST(MachineRobustnessDeathTest, BadEntryPcAborts) {
  vsim::Machine machine{vsim::MachineConfig{}};
  const vsim::Program program = vsim::assemble("halt\n");
  EXPECT_DEATH(machine.run(program, 99), "entry pc");
}

}  // namespace
}  // namespace smtu
