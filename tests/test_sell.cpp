// SELL-C-σ format invariants: round-trip, permutation correctness, chunk
// padding accounting against ELL, and the degenerate corners (σ=1, C larger
// than the row count, empty rows/matrices).
#include <gtest/gtest.h>

#include <bit>
#include <numeric>

#include "formats/csr.hpp"
#include "formats/ell.hpp"
#include "formats/sell.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

Coo irregular_coo(Index rows, Index cols, Rng& rng) {
  // A few heavy rows on top of a sparse background: high row-length variance.
  Coo coo = random_coo(rows, cols, rows * 2, rng);
  for (Index r = 0; r < rows; r += 7) {
    for (Index c = 0; c < cols; c += 2) coo.add(r, c, 1.0f + static_cast<float>(c));
  }
  coo.canonicalize();
  return coo;
}

TEST(SellCSigma, RoundTripsRandomMatrices) {
  Rng rng(42);
  for (const u32 sigma : {0u, 1u, 4u, 16u}) {
    for (const u32 chunk : {1u, 4u, 8u}) {
      const Coo coo = random_coo(37, 23, 150, rng);
      const SellCSigma sell = SellCSigma::from_coo(coo, chunk, sigma);
      EXPECT_TRUE(sell.validate());
      EXPECT_TRUE(coo_equal(sell.to_coo(), coo));
    }
  }
}

TEST(SellCSigma, PermutationIsAPermutationSortedByLengthInWindows) {
  Rng rng(7);
  const Coo coo = irregular_coo(64, 48, rng);
  const u32 sigma = 16;
  const SellCSigma sell = SellCSigma::from_coo(coo, 4, sigma);
  ASSERT_TRUE(sell.validate());

  // Every real row appears exactly once.
  std::vector<u32> seen(sell.rows(), 0);
  for (u32 p = 0; p < sell.rows(); ++p) {
    ASSERT_LT(sell.perm()[p], sell.rows());
    ++seen[sell.perm()[p]];
  }
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0u), sell.rows());
  EXPECT_EQ(*std::min_element(seen.begin(), seen.end()), 1u);

  // Inside each σ-window lengths are non-increasing, and rows never leave
  // their window.
  for (u32 p = 0; p + 1 < sell.rows(); ++p) {
    if ((p + 1) % sigma != 0) EXPECT_GE(sell.row_len()[p], sell.row_len()[p + 1]);
    EXPECT_EQ(sell.perm()[p] / sigma, p / sigma);
  }
}

TEST(SellCSigma, SigmaOneKeepsOriginalRowOrder) {
  Rng rng(9);
  const Coo coo = random_coo(20, 20, 60, rng);
  const SellCSigma sell = SellCSigma::from_coo(coo, 4, 1);
  for (u32 p = 0; p < sell.rows(); ++p) EXPECT_EQ(sell.perm()[p], p);
}

TEST(SellCSigma, ChunkLargerThanRowCount) {
  const Coo coo = make_coo(3, 5, {{0, 1, 2.0f}, {1, 0, 3.0f}, {1, 4, 4.0f}, {2, 2, 5.0f}});
  const SellCSigma sell = SellCSigma::from_coo(coo, 8, 0);
  ASSERT_TRUE(sell.validate());
  EXPECT_EQ(sell.num_chunks(), 1u);
  EXPECT_EQ(sell.perm().size(), 8u);  // padded to one full chunk
  EXPECT_EQ(sell.perm()[3], SellCSigma::kPadRow);
  EXPECT_TRUE(coo_equal(sell.to_coo(), coo));
}

TEST(SellCSigma, EmptyRowsAndEmptyMatrix) {
  // Rows 1 and 3 empty.
  const Coo coo = make_coo(5, 4, {{0, 0, 1.0f}, {2, 3, 2.0f}, {4, 1, 3.0f}});
  const SellCSigma sell = SellCSigma::from_coo(coo, 2, 0);
  ASSERT_TRUE(sell.validate());
  EXPECT_TRUE(coo_equal(sell.to_coo(), coo));
  const std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> y = sell.spmv(x);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[3], 0.0f);

  const SellCSigma empty = SellCSigma::from_coo(Coo(0, 0), 4, 0);
  EXPECT_TRUE(empty.validate());
  EXPECT_EQ(empty.num_chunks(), 0u);
  EXPECT_TRUE(empty.spmv({}).empty());
}

TEST(SellCSigma, PaddingNeverExceedsEllAndGlobalSortNeverExceedsSigmaOne) {
  Rng rng(11);
  const Coo coo = irregular_coo(96, 64, rng);
  const Ell ell = Ell::from_coo(coo);
  const u32 chunk = 8;
  const SellCSigma unsorted = SellCSigma::from_coo(coo, chunk, 1);
  const SellCSigma global = SellCSigma::from_coo(coo, chunk, 0);

  // Chunk-local widths can only shrink the slot count versus ELL's global
  // width, and sorting can only shrink it versus not sorting.
  const u64 ell_slots = static_cast<u64>(ell.rows()) * ell.width();
  EXPECT_LE(unsorted.padded_slots() + unsorted.nnz(), ell_slots);
  EXPECT_LE(global.padded_slots(), unsorted.padded_slots());
  EXPECT_GE(global.fill_ratio(), 1.0);
  EXPECT_LE(global.fill_ratio(), unsorted.fill_ratio());
}

TEST(SellCSigma, HostSpmvIsBitIdenticalToCsr) {
  Rng rng(13);
  for (const u32 sigma : {0u, 1u, 8u}) {
    const Coo coo = irregular_coo(80, 60, rng);
    const SellCSigma sell = SellCSigma::from_coo(coo, 8, sigma);
    const Csr csr = Csr::from_coo(coo);
    std::vector<float> x(coo.cols());
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const std::vector<float> ys = sell.spmv(x);
    const std::vector<float> yc = csr.spmv(x);
    ASSERT_EQ(ys.size(), yc.size());
    for (usize i = 0; i < ys.size(); ++i) {
      EXPECT_EQ(std::bit_cast<u32>(ys[i]), std::bit_cast<u32>(yc[i])) << "row " << i;
    }
  }
}

}  // namespace
}  // namespace smtu
