// End-to-end kernel correctness across the full hardware parameter grid:
// every (section, B, L, strict/relaxed, double-buffer, kernel variant)
// combination must produce the exact transpose.
#include <gtest/gtest.h>

#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

struct GridPoint {
  u32 section;
  u32 bandwidth;
  u32 lines;
  bool strict;
  bool double_buffer;
};

void PrintTo(const GridPoint& g, std::ostream* os) {
  *os << "s=" << g.section << " B=" << g.bandwidth << " L=" << g.lines
      << (g.strict ? " strict" : " relaxed") << (g.double_buffer ? " dbuf" : "");
}

class KernelGrid : public ::testing::TestWithParam<GridPoint> {};

TEST_P(KernelGrid, AllKernelsProduceTheExactTranspose) {
  const GridPoint& grid = GetParam();
  vsim::MachineConfig config;
  config.section = grid.section;
  config.stm.bandwidth = grid.bandwidth;
  config.stm.lines = grid.lines;
  config.stm.strict_consecutive_lines = grid.strict;
  config.stm.double_buffer = grid.double_buffer;

  Rng rng(grid.section * 1000 + grid.bandwidth * 10 + grid.lines);
  const Coo coo = random_coo(130, 90, 1100, rng);
  const Coo expected = coo.transposed();
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  EXPECT_TRUE(coo_equal(kernels::run_hism_transpose(hism, config).transposed.to_coo(),
                        expected));
  EXPECT_TRUE(coo_equal(
      kernels::run_hism_transpose(hism, config, /*split_drain_registers=*/true)
          .transposed.to_coo(),
      expected));
  if (grid.double_buffer) {
    EXPECT_TRUE(coo_equal(
        kernels::run_hism_transpose_pipelined(hism, config).transposed.to_coo(), expected));
  }
  EXPECT_TRUE(
      coo_equal(kernels::run_crs_transpose(Csr::from_coo(coo), config).transposed, expected));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelGrid,
    ::testing::Values(GridPoint{8, 1, 1, true, false}, GridPoint{8, 4, 4, true, true},
                      GridPoint{16, 2, 2, false, false}, GridPoint{16, 8, 4, true, true},
                      GridPoint{32, 4, 8, true, false}, GridPoint{64, 1, 1, true, true},
                      GridPoint{64, 4, 4, false, true}, GridPoint{64, 8, 8, true, false},
                      GridPoint{128, 4, 4, true, true}, GridPoint{256, 4, 4, true, false}));

}  // namespace
}  // namespace smtu
