// Integration tests for the three SpMV kernels (HiSM positional
// multiply-accumulate, CRS gather-reduce, JD diagonal-parallel), verified
// against the host CSR reference. Float accumulation order differs between
// methods, so comparisons use a relative tolerance.
#include <gtest/gtest.h>

#include <cmath>

#include "formats/csr.hpp"
#include "formats/jagged.hpp"
#include "kernels/spmv.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::random_coo;

std::vector<float> random_x(usize n, u64 seed) {
  Rng rng(seed);
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

void expect_near(const std::vector<float>& actual, const std::vector<float>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (usize i = 0; i < actual.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(expected[i]));
    EXPECT_NEAR(actual[i], expected[i], 1e-4f * scale) << "at row " << i;
  }
}

struct AllThree {
  kernels::SpmvResult hism;
  kernels::SpmvResult crs;
  kernels::SpmvResult jd;
  std::vector<float> reference;
};

AllThree run_all(const Coo& coo, const vsim::MachineConfig& config, u64 seed) {
  const std::vector<float> x = random_x(coo.cols(), seed);
  const Csr csr = Csr::from_coo(coo);
  AllThree out;
  out.reference = csr.spmv(x);
  out.hism = kernels::run_hism_spmv(HismMatrix::from_coo(coo, config.section), x, config);
  out.crs = kernels::run_crs_spmv(csr, x, config);
  out.jd = kernels::run_jd_spmv(Jagged::from_coo(coo), x, config);
  return out;
}

TEST(SpmvKernels, SingleBlockMatrix) {
  Rng rng(1);
  vsim::MachineConfig config;
  config.section = 8;
  const Coo coo = random_coo(8, 8, 20, rng);
  const AllThree r = run_all(coo, config, 10);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
}

TEST(SpmvKernels, MultiLevelHism) {
  Rng rng(2);
  vsim::MachineConfig config;
  config.section = 8;
  const Coo coo = random_coo(200, 200, 1200, rng);
  const AllThree r = run_all(coo, config, 11);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
}

TEST(SpmvKernels, RectangularWide) {
  Rng rng(3);
  vsim::MachineConfig config;
  config.section = 16;
  const Coo coo = random_coo(40, 180, 700, rng);
  const AllThree r = run_all(coo, config, 12);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
}

TEST(SpmvKernels, RectangularTall) {
  Rng rng(4);
  vsim::MachineConfig config;
  config.section = 16;
  const Coo coo = random_coo(180, 40, 700, rng);
  const AllThree r = run_all(coo, config, 13);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
}

TEST(SpmvKernels, DefaultSection64) {
  Rng rng(5);
  const vsim::MachineConfig config;
  const Coo coo = random_coo(300, 300, 3000, rng);
  const AllThree r = run_all(coo, config, 14);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
}

TEST(SpmvKernels, EmptyMatrix) {
  const vsim::MachineConfig config;
  const AllThree r = run_all(Coo(50, 50), config, 15);
  for (const float v : r.hism.y) EXPECT_EQ(v, 0.0f);
  for (const float v : r.crs.y) EXPECT_EQ(v, 0.0f);
  for (const float v : r.jd.y) EXPECT_EQ(v, 0.0f);
}

TEST(SpmvKernels, EmptyRowsProduceZero) {
  Coo coo(64, 64);
  coo.add(10, 20, 2.0f);
  coo.add(50, 3, -1.0f);
  coo.canonicalize();
  const vsim::MachineConfig config;
  const AllThree r = run_all(coo, config, 16);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
  EXPECT_EQ(r.hism.y[0], 0.0f);
}

TEST(SpmvKernels, RowsLongerThanSection) {
  Coo coo(4, 256);
  Rng rng(6);
  for (Index r = 0; r < 4; ++r) {
    for (Index c = 0; c < 200; ++c) {
      coo.add(r, c, static_cast<float>(rng.uniform(0.1, 1.0)));
    }
  }
  coo.canonicalize();
  const vsim::MachineConfig config;
  const AllThree r = run_all(coo, config, 17);
  expect_near(r.hism.y, r.reference);
  expect_near(r.crs.y, r.reference);
  expect_near(r.jd.y, r.reference);
}

TEST(SpmvKernels, TransposedProductWithoutTransposing) {
  // y = A^T x via the mirror positional ops — no transposition performed.
  Rng rng(30);
  vsim::MachineConfig config;
  config.section = 8;
  const Coo coo = random_coo(150, 90, 900, rng);
  const std::vector<float> x = random_x(150, 31);

  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const auto result = kernels::run_hism_spmv_transposed(hism, x, config);
  const std::vector<float> reference = Csr::from_coo(coo.transposed()).spmv(x);
  expect_near(result.y, reference);
}

TEST(SpmvKernels, TransposedProductMatchesTransposeThenMultiply) {
  Rng rng(32);
  const vsim::MachineConfig config;
  const Coo coo = random_coo(300, 300, 4000, rng);
  const std::vector<float> x = random_x(300, 33);

  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  const HismMatrix hism_t = HismMatrix::from_coo(coo.transposed(), config.section);
  const auto direct = kernels::run_hism_spmv_transposed(hism, x, config);
  const auto two_step = kernels::run_hism_spmv(hism_t, x, config);
  expect_near(direct.y, two_step.y);
  // And it costs about the same as the direct product — the symmetry is free.
  const auto forward = kernels::run_hism_spmv(hism, x, config);
  EXPECT_LT(direct.stats.cycles, 2 * forward.stats.cycles);
}

TEST(SpmvKernels, HismBeatsCrsOnClusteredMatrix) {
  // The companion-paper claim in the paper's introduction: HiSM SpMV is
  // faster than CRS SpMV on a conventional vector machine, markedly so
  // when non-zeros cluster into dense blocks.
  Rng rng(7);
  Coo coo(2048, 2048);
  // 40 dense-ish 32x32 clusters.
  for (const u64 block : rng.sample_without_replacement(64 * 64, 40)) {
    const Index br = (block / 64) * 32;
    const Index bc = (block % 64) * 32;
    for (const u64 cell : rng.sample_without_replacement(1024, 600)) {
      coo.add(br + cell / 32, bc + cell % 32, static_cast<float>(rng.uniform(0.1, 1.0)));
    }
  }
  coo.canonicalize();
  const vsim::MachineConfig config;
  const AllThree r = run_all(coo, config, 18);
  expect_near(r.hism.y, r.reference);
  EXPECT_LT(r.hism.stats.cycles, r.crs.stats.cycles);
  EXPECT_LT(r.hism.stats.cycles, r.jd.stats.cycles);
}

}  // namespace
}  // namespace smtu
