#include <gtest/gtest.h>

#include <map>

#include "hism/access.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::random_coo;

TEST(HismAccess, GetFindsEveryStoredElement) {
  Rng rng(1);
  const Coo coo = random_coo(300, 200, 900, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  for (const CooEntry& e : coo.entries()) {
    const auto value = hism_get(hism, e.row, e.col);
    ASSERT_TRUE(value.has_value());
    EXPECT_FLOAT_EQ(*value, e.value);
  }
}

TEST(HismAccess, GetReturnsNulloptForEmptyPositions) {
  Rng rng(2);
  const Coo coo = random_coo(100, 100, 200, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 16);
  std::map<std::pair<Index, Index>, float> stored;
  for (const CooEntry& e : coo.entries()) stored[{e.row, e.col}] = e.value;
  // Probe a grid of positions; absent ones must return nullopt.
  for (Index r = 0; r < 100; r += 7) {
    for (Index c = 0; c < 100; c += 5) {
      const auto value = hism_get(hism, r, c);
      EXPECT_EQ(value.has_value(), stored.count({r, c}) > 0) << r << "," << c;
    }
  }
}

TEST(HismAccess, ExtractRowMatchesCooAndIsSorted) {
  Rng rng(3);
  const Coo coo = random_coo(80, 120, 700, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  for (Index row = 0; row < 80; ++row) {
    std::vector<std::pair<Index, float>> expected;
    for (const CooEntry& e : coo.entries()) {
      if (e.row == row) expected.emplace_back(e.col, e.value);
    }
    const auto actual = hism_extract_row(hism, row);
    EXPECT_EQ(actual, expected) << "row " << row;  // COO is row-major sorted
  }
}

TEST(HismAccess, ExtractColMatchesCooAndIsSorted) {
  Rng rng(4);
  const Coo coo = random_coo(120, 80, 700, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  for (Index col = 0; col < 80; col += 3) {
    std::vector<std::pair<Index, float>> expected;
    for (const CooEntry& e : coo.entries()) {
      if (e.col == col) expected.emplace_back(e.row, e.value);
    }
    const auto actual = hism_extract_col(hism, col);
    EXPECT_EQ(actual, expected) << "col " << col;
  }
}

TEST(HismAccess, RowOfEmptyMatrixIsEmpty) {
  const HismMatrix hism = HismMatrix::from_coo(Coo(50, 50), 8);
  EXPECT_TRUE(hism_extract_row(hism, 25).empty());
  EXPECT_TRUE(hism_extract_col(hism, 10).empty());
  EXPECT_FALSE(hism_get(hism, 0, 0).has_value());
}

TEST(HismAccess, ConsistentAcrossSectionSizes) {
  Rng rng(5);
  const Coo coo = random_coo(200, 200, 1500, rng);
  const HismMatrix small = HismMatrix::from_coo(coo, 8);
  const HismMatrix large = HismMatrix::from_coo(coo, 64);
  for (Index row = 0; row < 200; row += 11) {
    EXPECT_EQ(hism_extract_row(small, row), hism_extract_row(large, row));
  }
}

TEST(HismAccess, RowExtractionAgreesWithTransposedColumn) {
  Rng rng(6);
  const Coo coo = random_coo(60, 60, 400, rng);
  const HismMatrix hism = HismMatrix::from_coo(coo, 8);
  const HismMatrix hism_t = HismMatrix::from_coo(coo.transposed(), 8);
  for (Index i = 0; i < 60; i += 5) {
    EXPECT_EQ(hism_extract_row(hism, i), hism_extract_col(hism_t, i));
  }
}

TEST(HismAccessDeathTest, OutOfBoundsAborts) {
  const HismMatrix hism = HismMatrix::from_coo(Coo(10, 20), 8);
  EXPECT_DEATH((void)hism_get(hism, 10, 0), "out of bounds");
  EXPECT_DEATH((void)hism_extract_row(hism, 10), "out of bounds");
  EXPECT_DEATH((void)hism_extract_col(hism, 20), "out of bounds");
}

}  // namespace
}  // namespace smtu
