// Batch-boundary properties of the STM engines: splitting a block's fill or
// drain into arbitrary batches (the strip-mined v_stcr/v_ldcc pattern)
// changes cycle counts only at batch seams, never the drained content; the
// unit's lifetime statistics stay coherent across blocks and banks.
#include <gtest/gtest.h>

#include <algorithm>

#include "stm/unit.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"

namespace smtu {
namespace {

std::vector<StmEntry> random_block(u32 section, usize count, u64 seed) {
  Rng rng(seed);
  std::vector<StmEntry> entries;
  for (const u64 cell :
       rng.sample_without_replacement(static_cast<u64>(section) * section, count)) {
    entries.push_back({static_cast<u8>(cell / section), static_cast<u8>(cell % section),
                       static_cast<u32>(cell * 5 + 3)});
  }
  return entries;
}

StmConfig config_with(u32 bandwidth, u32 lines) {
  StmConfig config;
  config.bandwidth = bandwidth;
  config.lines = lines;
  return config;
}

TEST(StmBatching, SplitFillsAddAtMostOneCyclePerSeam) {
  const auto entries = random_block(64, 600, 1);
  const StmConfig config = config_with(4, 4);

  StmUnit whole(config);
  whole.clear();
  const u32 whole_cycles = whole.write_batch(entries);

  for (const usize batch_size : {1uz, 7uz, 64uz, 100uz}) {
    StmUnit split(config);
    split.clear();
    u32 split_cycles = 0;
    usize seams = 0;
    for (usize at = 0; at < entries.size(); at += batch_size) {
      const usize take = std::min(batch_size, entries.size() - at);
      split_cycles += split.write_batch(
          std::span<const StmEntry>(entries).subspan(at, take));
      ++seams;
    }
    EXPECT_GE(split_cycles, whole_cycles) << "batch=" << batch_size;
    EXPECT_LE(split_cycles, whole_cycles + seams) << "batch=" << batch_size;
  }
}

TEST(StmBatching, DrainBatchSplitIsExactlyCycleNeutral) {
  // The drain schedule is frozen once, so batch boundaries never add cycles.
  const auto entries = random_block(64, 500, 2);
  const StmConfig config = config_with(4, 4);

  StmUnit whole(config);
  const u32 whole_read = whole.transpose_block(entries).read_cycles;

  StmUnit split(config);
  split.clear();
  split.write_batch(entries);
  Rng rng(3);
  u32 split_read = 0;
  u32 remaining = static_cast<u32>(entries.size());
  while (remaining > 0) {
    const u32 take = static_cast<u32>(rng.range(1, std::min<i64>(remaining, 90)));
    split_read += split.read_batch(take).cycles;
    remaining -= take;
  }
  EXPECT_EQ(split_read, whole_read);
}

TEST(StmBatching, DrainOrderIndependentOfBatching) {
  const auto entries = random_block(32, 300, 4);
  const StmConfig config = config_with(2, 2);

  StmUnit whole(config);
  const auto expected = whole.transpose_block(entries).transposed;

  StmUnit split(config);
  split.clear();
  split.write_batch(entries);
  std::vector<StmEntry> drained;
  u32 remaining = static_cast<u32>(entries.size());
  while (remaining > 0) {
    const u32 take = std::min<u32>(32, remaining);
    const auto batch = split.read_batch(take);
    drained.insert(drained.end(), batch.entries.begin(), batch.entries.end());
    remaining -= take;
  }
  EXPECT_EQ(drained, expected);
}

TEST(StmBatching, StatsCoherentAcrossManyBlocks) {
  const StmConfig config = config_with(4, 4);
  StmUnit unit(config);
  u64 expected_in = 0;
  for (int block = 0; block < 20; ++block) {
    const auto entries = random_block(16, 40 + block, 100 + block);
    unit.transpose_block(entries);
    expected_in += entries.size();
  }
  EXPECT_EQ(unit.stats().blocks, 20u);
  EXPECT_EQ(unit.stats().elements_in, expected_in);
  EXPECT_EQ(unit.stats().elements_out, expected_in);
  // Each phase moves at most B = 4 elements per cycle and at least one.
  EXPECT_GE(unit.stats().write_cycles, ceil_div(expected_in, 4));
  EXPECT_LE(unit.stats().write_cycles, expected_in);
  EXPECT_GE(unit.stats().read_cycles, ceil_div(expected_in, 4));
  EXPECT_LE(unit.stats().read_cycles, expected_in);
}

TEST(StmBatching, DoubleBufferBanksInterleaveCorrectly) {
  StmConfig config = config_with(4, 4);
  config.double_buffer = true;
  StmUnit unit(config);

  const auto block_a = random_block(16, 60, 10);
  const auto block_b = random_block(16, 70, 11);

  // fill A, switch, fill B while draining A, then drain B.
  unit.clear();
  unit.write_batch(block_a);
  unit.clear();  // ping-pong: A moves to the drain side
  unit.write_batch(block_b);

  const auto drained_a = unit.read_batch(static_cast<u32>(block_a.size()));
  const auto drained_b = unit.read_batch(static_cast<u32>(block_b.size()));
  EXPECT_NE(drained_a.bank, drained_b.bank);

  auto sorted_transposed = [](std::vector<StmEntry> entries) {
    for (StmEntry& e : entries) std::swap(e.row, e.col);
    std::sort(entries.begin(), entries.end(), [](const StmEntry& a, const StmEntry& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    return entries;
  };
  // ReadBatch::entries is a view into the unit's drain buffer; materialize
  // before comparing.
  const std::vector<StmEntry> got_a(drained_a.entries.begin(), drained_a.entries.end());
  const std::vector<StmEntry> got_b(drained_b.entries.begin(), drained_b.entries.end());
  EXPECT_EQ(got_a, sorted_transposed(block_a));
  EXPECT_EQ(got_b, sorted_transposed(block_b));
}

TEST(StmBatchingDeathTest, DoubleBufferIcmGuardsUndrainedBank) {
  StmConfig config = config_with(4, 4);
  config.double_buffer = true;
  StmUnit unit(config);
  unit.clear();
  unit.write_batch(random_block(16, 30, 20));
  unit.clear();  // fine: the other bank is empty
  unit.write_batch(random_block(16, 30, 21));
  // Both banks now hold undrained blocks; a third icm must refuse.
  EXPECT_DEATH(unit.clear(), "undrained");
}

}  // namespace
}  // namespace smtu
