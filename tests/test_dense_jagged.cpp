#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "formats/dense.hpp"
#include "formats/jagged.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::make_coo;
using testing::random_coo;

TEST(Dense, RoundTripThroughCoo) {
  Rng rng(1);
  const Coo coo = random_coo(9, 13, 40, rng);
  EXPECT_TRUE(coo_equal(Dense::from_coo(coo).to_coo(), coo));
}

TEST(Dense, TransposeMatchesCooTranspose) {
  Rng rng(2);
  const Coo coo = random_coo(11, 7, 30, rng);
  EXPECT_TRUE(coo_equal(Dense::from_coo(coo).transposed().to_coo(), coo.transposed()));
}

TEST(Dense, AtAccessors) {
  Dense dense(2, 3);
  dense.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(dense.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(dense.at(0, 0), 0.0f);
}

TEST(Jagged, RoundTripThroughCoo) {
  Rng rng(3);
  const Coo coo = random_coo(20, 20, 120, rng);
  const Jagged jd = Jagged::from_coo(coo);
  EXPECT_TRUE(jd.validate());
  EXPECT_TRUE(coo_equal(jd.to_coo(), coo));
}

TEST(Jagged, DiagonalsShrinkMonotonically) {
  Rng rng(4);
  const Coo coo = random_coo(30, 30, 200, rng);
  const Jagged jd = Jagged::from_coo(coo);
  u32 prev = 0xffffffffu;
  for (usize d = 0; d + 1 < jd.diag_ptr().size(); ++d) {
    const u32 len = jd.diag_ptr()[d + 1] - jd.diag_ptr()[d];
    EXPECT_LE(len, prev);
    prev = len;
  }
}

TEST(Jagged, FirstDiagonalCoversAllNonEmptyRows) {
  const Coo coo = make_coo(5, 5, {{0, 0, 1.0f}, {2, 1, 1.0f}, {2, 3, 1.0f}, {4, 4, 1.0f}});
  const Jagged jd = Jagged::from_coo(coo);
  ASSERT_GE(jd.diagonals(), 1u);
  EXPECT_EQ(jd.diag_ptr()[1] - jd.diag_ptr()[0], 3u);  // rows 0, 2, 4
}

TEST(Jagged, SpmvMatchesCsr) {
  Rng rng(5);
  const Coo coo = random_coo(40, 40, 300, rng);
  std::vector<float> x(40);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto y_jd = Jagged::from_coo(coo).spmv(x);
  const auto y_csr = Csr::from_coo(coo).spmv(x);
  ASSERT_EQ(y_jd.size(), y_csr.size());
  for (usize i = 0; i < y_jd.size(); ++i) EXPECT_NEAR(y_jd[i], y_csr[i], 1e-4f);
}

TEST(Jagged, EmptyMatrix) {
  const Jagged jd = Jagged::from_coo(Coo(6, 6));
  EXPECT_TRUE(jd.validate());
  EXPECT_EQ(jd.nnz(), 0u);
  EXPECT_EQ(jd.diagonals(), 0u);
}

}  // namespace
}  // namespace smtu
