// Documentation cross-checks: the ISA reference must cover every opcode the
// simulator implements, and the trace reference must describe the fields the
// exporters emit. SMTU_DOCS_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "vsim/isa.hpp"
#include "vsim/profiler.hpp"

namespace smtu::vsim {
namespace {

std::string read_doc(const std::string& name) {
  const std::string path = std::string(SMTU_DOCS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Docs, IsaReferenceCoversEveryOpcode) {
  const std::string doc = read_doc("ISA.md");
  ASSERT_FALSE(doc.empty());
  for (usize i = 0; i < kOpCount; ++i) {
    const std::string mnemonic = op_name(static_cast<Op>(i));
    ASSERT_NE(mnemonic, "?") << "op " << i << " has no mnemonic";
    // Every instruction appears code-formatted, either bare (`halt`) or as
    // the start of a syntax example (`add rd, rs1, rs2`).
    const bool documented = doc.find("`" + mnemonic + "`") != std::string::npos ||
                            doc.find("`" + mnemonic + " ") != std::string::npos;
    EXPECT_TRUE(documented) << "docs/ISA.md does not document `" << mnemonic << "`";
  }
}

TEST(Docs, IsaReferenceCoversAssemblerAliases) {
  const std::string doc = read_doc("ISA.md");
  for (const char* alias : {"call", "v_ld_idx", "v_st_idx", "v_add_imm", "v_setimm"}) {
    EXPECT_NE(doc.find("`" + std::string(alias) + "`"), std::string::npos)
        << "docs/ISA.md does not mention alias `" << alias << "`";
  }
}

TEST(Docs, TraceReferenceDescribesEventFieldsAndTracks) {
  const std::string doc = read_doc("TRACE.md");
  ASSERT_FALSE(doc.empty());
  // The TraceEvent timing fields, as documented for both renderers and the
  // Chrome export.
  for (const char* field : {"`issue`", "`start`", "`first`", "`last`", "`pc`", "`vl`"}) {
    EXPECT_NE(doc.find(field), std::string::npos)
        << "docs/TRACE.md does not document " << field;
  }
  // The four tracks and the truncation marker.
  for (const char* needle : {"scalar", "vmem", "valu", "stm", "dropped", "capacity"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/TRACE.md does not mention " << needle;
  }
  // The worked example stays tied to the shipped demo program.
  EXPECT_NE(doc.find("block_transpose.s"), std::string::npos);
  // The machine-readable truncation marker is documented, and the
  // profiler reference is cross-linked.
  EXPECT_NE(doc.find("\"trace\""), std::string::npos);
  EXPECT_NE(doc.find("PROFILING.md"), std::string::npos);
}

TEST(Docs, ProfilingReferenceCoversEveryBucketAndWorkflow) {
  const std::string doc = read_doc("PROFILING.md");
  ASSERT_FALSE(doc.empty());
  // Every stall reason and busy kind the profiler can emit is defined in
  // the reference, under the exact snake_case key used in JSON/reports.
  for (usize reason = 0; reason < kStallReasonCount; ++reason) {
    const std::string name = stall_reason_name(static_cast<StallReason>(reason));
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "docs/PROFILING.md does not define stall bucket `" << name << "`";
  }
  for (usize kind = 0; kind < kBusyKindCount; ++kind) {
    const std::string name = busy_kind_name(static_cast<BusyKind>(kind));
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "docs/PROFILING.md does not define busy bucket `" << name << "`";
  }
  // The region directive, the schema, the conservation invariant, and the
  // tooling entry points.
  for (const char* needle :
       {";; profile:", "smtu-profile-v1", "== total cycles", "--profile",
        "--profile-speedscope", "prof_report.py", "speedscope",
        "check_repro_determinism.py", "attach_profiler"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/PROFILING.md does not mention " << needle;
  }
}

TEST(Docs, KernelReferenceCoversEveryKernelAndItsRegions) {
  const std::string doc = read_doc("KERNELS.md");
  ASSERT_FALSE(doc.empty());
  // Every kernel source file in src/kernels/ has a section.
  for (const char* kernel :
       {"hism_transpose.cpp", "hism_transpose_pipelined.cpp", "crs_transpose.cpp",
        "dense_transpose.cpp", "shard.cpp", "crs_parallel.cpp", "spmv.cpp",
        "sell_spmv.cpp", "spgemm.cpp"}) {
    EXPECT_NE(doc.find(kernel), std::string::npos)
        << "docs/KERNELS.md does not cover " << kernel;
  }
  // The kernel-suite kernels' profile regions and driving bench.
  for (const char* needle :
       {"`sell_setup`", "`sell_stream`", "`spgemm_setup`", "`spgemm_walk`",
        "`spgemm_transpose`", "`spgemm_gustavson`", "ext_kernel_suite",
        "smtu-kernelsuite-v1", "bench_diff"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/KERNELS.md does not mention " << needle;
  }
  // The run_/time_ runner convention and the bit-identity invariant.
  EXPECT_NE(doc.find("time_"), std::string::npos);
  EXPECT_NE(doc.find("bit-identical"), std::string::npos);

  // Cross-links: the top-level docs route readers here, and the kernel
  // reference routes on to the format/profiling references.
  const std::string readme = read_doc("../README.md");
  EXPECT_NE(readme.find("docs/KERNELS.md"), std::string::npos)
      << "README.md does not link docs/KERNELS.md";
  const std::string hacking = read_doc("../HACKING.md");
  EXPECT_NE(hacking.find("docs/KERNELS.md"), std::string::npos)
      << "HACKING.md does not link docs/KERNELS.md";
  EXPECT_NE(doc.find("FORMATS.md"), std::string::npos);
  EXPECT_NE(doc.find("PROFILING.md"), std::string::npos);
}

TEST(Docs, FormatReferenceCoversEveryFormat) {
  const std::string doc = read_doc("FORMATS.md");
  ASSERT_FALSE(doc.empty());
  for (const char* format : {"COO", "CSR", "CSC", "Dense", "ELLPACK", "SELL-C-σ",
                             "Jagged Diagonal", "CDS", "BCSR", "HiSM"}) {
    EXPECT_NE(doc.find(format), std::string::npos)
        << "docs/FORMATS.md does not cover " << format;
  }
  // Storage accounting stays tied to the code and the ablation bench.
  for (const char* needle : {"storage_bytes", "ablation_storage", "from_coo",
                             "kPadRow", "fill_ratio"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/FORMATS.md does not mention " << needle;
  }
  const std::string readme = read_doc("../README.md");
  EXPECT_NE(readme.find("docs/FORMATS.md"), std::string::npos)
      << "README.md does not link docs/FORMATS.md";
  const std::string hacking = read_doc("../HACKING.md");
  EXPECT_NE(hacking.find("docs/FORMATS.md"), std::string::npos)
      << "HACKING.md does not link docs/FORMATS.md";
}

TEST(Docs, MulticoreReferenceCoversSystemModelAndTooling) {
  const std::string doc = read_doc("MULTICORE.md");
  ASSERT_FALSE(doc.empty());
  // The layered ownership model and its shared/borrowed pieces.
  for (const char* needle : {"MultiCoreSystem", "MemorySystem", "CoreContext",
                             "attach_profiler"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/MULTICORE.md does not mention " << needle;
  }
  // The bank model knobs and the contention/synchronization stall buckets
  // (the exact snake_case keys the profiler emits).
  for (const char* needle : {"`banks`", "`bank_bytes_per_cycle`", "`interleave_bytes`",
                             "`mem_bank_contention`", "`barrier_wait`"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/MULTICORE.md does not define " << needle;
  }
  // Arbitration rules, the primitives, and the kernels.
  for (const char* needle : {"round-robin", "`barrier`", "`amo_add`", "panel", "merge",
                             "rank table", "histogram"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/MULTICORE.md does not describe " << needle;
  }
  // The scaling bench, its schema, its baseline gate, and the rollup tool.
  for (const char* needle : {"ext_multicore_scaling", "smtu-scaling-v1", "bench_diff",
                             "--per-core", "prof_report.py"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/MULTICORE.md does not mention " << needle;
  }
  // The N=1 bit-identity invariant is stated.
  EXPECT_NE(doc.find("bit-identical"), std::string::npos);

  // Cross-links: the top-level docs route readers here.
  const std::string readme = read_doc("../README.md");
  EXPECT_NE(readme.find("docs/MULTICORE.md"), std::string::npos)
      << "README.md does not link docs/MULTICORE.md";
  const std::string hacking = read_doc("../HACKING.md");
  EXPECT_NE(hacking.find("docs/MULTICORE.md"), std::string::npos)
      << "HACKING.md does not link docs/MULTICORE.md";
}

TEST(Docs, TelemetryReferenceCoversMetricsSchemaAndTooling) {
  const std::string doc = read_doc("TELEMETRY.md");
  ASSERT_FALSE(doc.empty());
  // The metric-name suffix scheme and every instrumented component's
  // metrics, under the exact names the registry exports.
  for (const char* needle :
       {"`_total`", "`_us`", "`_pct`", "`_peak`", "pool.tasks_total",
        "pool.task_wait_us", "pool.task_run_us", "pool.queue_depth_peak",
        "pool.worker_util_pct", "cache.program.", "cache.stage.",
        "cache.sim.", "stage.build_us", "bench.item_wall_us",
        "vsim.assemble_us", "vsim.run_us"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/TELEMETRY.md does not mention " << needle;
  }
  // Histogram semantics: bucket geometry and the percentile contract.
  for (const char* needle : {"25%", "octave", "shard", "snapshot()",
                             "upper bound", "TSan"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/TELEMETRY.md does not describe " << needle;
  }
  // The schema, the flags, the renderer, the gating rule, and the
  // determinism enforcement.
  for (const char* needle :
       {"smtu-telemetry-v1", "--telemetry", "--telemetry-json",
        "prof_report.py", "bench_diff", "check_repro_determinism.py",
        "kHostTracePid", "HostSpan", "Adding a metric"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/TELEMETRY.md does not mention " << needle;
  }
  // Off-by-default byte-identity is stated.
  EXPECT_NE(doc.find("byte-identical"), std::string::npos);

  // Cross-links: the top-level docs and the sibling references route here.
  const std::string readme = read_doc("../README.md");
  EXPECT_NE(readme.find("docs/TELEMETRY.md"), std::string::npos)
      << "README.md does not link docs/TELEMETRY.md";
  const std::string hacking = read_doc("../HACKING.md");
  EXPECT_NE(hacking.find("docs/TELEMETRY.md"), std::string::npos)
      << "HACKING.md does not link docs/TELEMETRY.md";
  const std::string profiling = read_doc("PROFILING.md");
  EXPECT_NE(profiling.find("TELEMETRY.md"), std::string::npos)
      << "docs/PROFILING.md does not link docs/TELEMETRY.md";
  const std::string trace = read_doc("TRACE.md");
  EXPECT_NE(trace.find("TELEMETRY.md"), std::string::npos)
      << "docs/TRACE.md does not link docs/TELEMETRY.md";
  // And TELEMETRY.md routes back to the simulated-side references.
  EXPECT_NE(doc.find("PROFILING.md"), std::string::npos);
  EXPECT_NE(doc.find("TRACE.md"), std::string::npos);
}

TEST(Docs, InterpreterInternalsDocumented) {
  // HACKING.md's "Host performance" section explains the threaded-code
  // interpreter: decode-time dispatch binding, the SoA ExecState, the SIMD
  // vector bodies, the differential switch mode, and how to add a handler.
  const std::string hacking = read_doc("../HACKING.md");
  for (const char* needle :
       {"Interpreter internals", "ExecState", "SMTU_DISPATCH", "opcode_handler",
        "exec_vector", "step_switch", "SMTU_VEC_LOOP", "read_span",
        "test_dispatch.cpp", "set_default_dispatch_mode", "vreg_row"}) {
    EXPECT_NE(hacking.find(needle), std::string::npos)
        << "HACKING.md does not mention " << needle;
  }
  // The old per-opcode instructions named four switches; the recipe now
  // routes through the shared constexpr tables and the handler templates.
  EXPECT_EQ(hacking.find("four switches"), std::string::npos)
      << "HACKING.md still describes the pre-threaded-dispatch recipe";

  // The ISA reference routes readers to the interpreter internals.
  const std::string isa = read_doc("ISA.md");
  for (const char* needle : {"SMTU_DISPATCH", "Interpreter internals", "HACKING.md"}) {
    EXPECT_NE(isa.find(needle), std::string::npos)
        << "docs/ISA.md does not mention " << needle;
  }
}

TEST(Docs, ServingReferenceCoversSchemasSchedulerAndGating) {
  const std::string doc = read_doc("SERVING.md");
  ASSERT_FALSE(doc.empty());
  // The driver, its two modes, and both JSON schemas.
  for (const char* needle :
       {"smtu_serve", "--generate", "--replay", "smtu-trace-v1",
        "smtu-serve-v1", "--trace-out", "--json"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVING.md does not mention " << needle;
  }
  // The scheduler semantics: the four outcomes, the knobs behind them, and
  // the service-time model.
  for (const char* needle :
       {"`simulated`", "`coalesced`", "`warm`", "`shed`", "--no-dedup",
        "--no-batching", "--queue-depth", "--closed-loop", "cycles_per_us",
        "replay_vus", "admission"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVING.md does not describe " << needle;
  }
  // The determinism contract and the gating split: _vus gates, wall clock
  // never does, scheduler counters match exactly.
  for (const char* needle :
       {"_vus", "bit-identical", "req_per_sec", "never gate", "exact",
        "bench_diff", "prof_report.py", "check_repro_determinism.py",
        "serve_sweep", "test_serve.cpp"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVING.md does not mention " << needle;
  }
  // The host-side batching story names the caches it leans on.
  for (const char* needle : {"ProgramCache", "MatrixStageCache", "SimCache"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/SERVING.md does not mention " << needle;
  }

  // Cross-links: the top-level docs route here.
  const std::string readme = read_doc("../README.md");
  EXPECT_NE(readme.find("docs/SERVING.md"), std::string::npos)
      << "README.md does not link docs/SERVING.md";
  const std::string hacking = read_doc("../HACKING.md");
  EXPECT_NE(hacking.find("docs/SERVING.md"), std::string::npos)
      << "HACKING.md does not link docs/SERVING.md";
}

}  // namespace
}  // namespace smtu::vsim
