// Documentation cross-checks: the ISA reference must cover every opcode the
// simulator implements, and the trace reference must describe the fields the
// exporters emit. SMTU_DOCS_DIR is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "vsim/isa.hpp"

namespace smtu::vsim {
namespace {

std::string read_doc(const std::string& name) {
  const std::string path = std::string(SMTU_DOCS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Docs, IsaReferenceCoversEveryOpcode) {
  const std::string doc = read_doc("ISA.md");
  ASSERT_FALSE(doc.empty());
  for (usize i = 0; i < kOpCount; ++i) {
    const std::string mnemonic = op_name(static_cast<Op>(i));
    ASSERT_NE(mnemonic, "?") << "op " << i << " has no mnemonic";
    // Every instruction appears code-formatted, either bare (`halt`) or as
    // the start of a syntax example (`add rd, rs1, rs2`).
    const bool documented = doc.find("`" + mnemonic + "`") != std::string::npos ||
                            doc.find("`" + mnemonic + " ") != std::string::npos;
    EXPECT_TRUE(documented) << "docs/ISA.md does not document `" << mnemonic << "`";
  }
}

TEST(Docs, IsaReferenceCoversAssemblerAliases) {
  const std::string doc = read_doc("ISA.md");
  for (const char* alias : {"call", "v_ld_idx", "v_st_idx", "v_add_imm", "v_setimm"}) {
    EXPECT_NE(doc.find("`" + std::string(alias) + "`"), std::string::npos)
        << "docs/ISA.md does not mention alias `" << alias << "`";
  }
}

TEST(Docs, TraceReferenceDescribesEventFieldsAndTracks) {
  const std::string doc = read_doc("TRACE.md");
  ASSERT_FALSE(doc.empty());
  // The TraceEvent timing fields, as documented for both renderers and the
  // Chrome export.
  for (const char* field : {"`issue`", "`start`", "`first`", "`last`", "`pc`", "`vl`"}) {
    EXPECT_NE(doc.find(field), std::string::npos)
        << "docs/TRACE.md does not document " << field;
  }
  // The four tracks and the truncation marker.
  for (const char* needle : {"scalar", "vmem", "valu", "stm", "dropped", "capacity"}) {
    EXPECT_NE(doc.find(needle), std::string::npos)
        << "docs/TRACE.md does not mention " << needle;
  }
  // The worked example stays tied to the shipped demo program.
  EXPECT_NE(doc.find("block_transpose.s"), std::string::npos);
}

}  // namespace
}  // namespace smtu::vsim
