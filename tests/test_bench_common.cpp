// Tests of the benchmark harness plumbing itself: option parsing, the
// transpose comparison helper, and external MatrixMarket suite loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "formats/matrix_market.hpp"
#include "suite/generators.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

TEST(BenchCommon, ParseOptionsDefaultsAndOverrides) {
  {
    const char* argv[] = {"bench"};
    CommandLine cli(1, argv);
    const bench::BenchOptions options = bench::parse_options(cli);
    EXPECT_DOUBLE_EQ(options.suite.scale, 1.0);
    EXPECT_FALSE(options.csv_path.has_value());
    EXPECT_FALSE(options.json_path.has_value());
    EXPECT_FALSE(options.verify);
  }
  {
    const char* argv[] = {"bench", "--scale=0.25", "--seed=7", "--csv=a.csv",
                          "--json=b.json", "--verify"};
    CommandLine cli(6, argv);
    const bench::BenchOptions options = bench::parse_options(cli);
    EXPECT_DOUBLE_EQ(options.suite.scale, 0.25);
    EXPECT_EQ(options.suite.seed, 7u);
    EXPECT_EQ(options.csv_path.value(), "a.csv");
    EXPECT_EQ(options.json_path.value(), "b.json");
    EXPECT_TRUE(options.verify);
  }
}

TEST(BenchCommon, CompareTransposesConsistentWithAndWithoutVerify) {
  Rng rng(1);
  suite::SuiteMatrix entry;
  entry.name = "probe";
  entry.set = "test";
  entry.matrix = testing::random_coo(100, 100, 700, rng);
  entry.metrics = suite::compute_metrics(entry.matrix);

  const vsim::MachineConfig config;
  const auto timed = bench::compare_transposes(entry, config, /*verify=*/false);
  const auto verified = bench::compare_transposes(entry, config, /*verify=*/true);
  EXPECT_EQ(timed.hism_cycles, verified.hism_cycles);
  EXPECT_EQ(timed.crs_cycles, verified.crs_cycles);
  EXPECT_GT(timed.speedup, 1.0);
  EXPECT_NEAR(timed.hism_cycles_per_nnz * static_cast<double>(entry.matrix.nnz()),
              static_cast<double>(timed.hism_cycles), 1.0);
}

TEST(BenchCommon, LoadExternalSuiteRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "smtu_bench_common_test";
  std::filesystem::create_directories(dir);
  Rng rng(2);
  const Coo a = testing::random_coo(30, 30, 90, rng);
  const Coo b = suite::gen_tridiagonal(25, rng);
  write_matrix_market_file((dir / "b_second.mtx").string(), b);
  write_matrix_market_file((dir / "a_first.mtx").string(), a);
  write_matrix_market_file((dir / "ignored.txt").string(), a);  // wrong extension

  const auto external = bench::load_external_suite(dir.string());
  ASSERT_EQ(external.size(), 2u);  // .txt skipped
  EXPECT_EQ(external[0].name, "a_first");  // sorted by filename
  EXPECT_EQ(external[1].name, "b_second");
  EXPECT_TRUE(testing::coo_equal(external[0].matrix, a));
  EXPECT_TRUE(testing::coo_equal(external[1].matrix, b));
  EXPECT_EQ(external[0].set, "external");
  EXPECT_GT(external[1].metrics.locality, 0.0);

  std::filesystem::remove_all(dir);
}

TEST(BenchCommonDeathTest, EmptyExternalDirAborts) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "smtu_bench_common_empty";
  std::filesystem::create_directories(dir);
  EXPECT_DEATH(bench::load_external_suite(dir.string()), "no .mtx files");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smtu
