// Tests of the benchmark harness plumbing itself: option parsing, the
// transpose comparison helper, and external MatrixMarket suite loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "bench_common.hpp"
#include "formats/matrix_market.hpp"
#include "suite/generators.hpp"
#include "testing.hpp"
#include "vsim/json_export.hpp"

namespace smtu {
namespace {

TEST(BenchCommon, ParseOptionsDefaultsAndOverrides) {
  {
    const char* argv[] = {"bench"};
    CommandLine cli(1, argv);
    const bench::BenchOptions options = bench::parse_options(cli);
    EXPECT_DOUBLE_EQ(options.suite.scale, 1.0);
    EXPECT_FALSE(options.csv_path.has_value());
    EXPECT_FALSE(options.json_path.has_value());
    EXPECT_FALSE(options.verify);
  }
  {
    const char* argv[] = {"bench", "--scale=0.25", "--seed=7", "--csv=a.csv",
                          "--json=b.json", "--verify"};
    CommandLine cli(6, argv);
    const bench::BenchOptions options = bench::parse_options(cli);
    EXPECT_DOUBLE_EQ(options.suite.scale, 0.25);
    EXPECT_EQ(options.suite.seed, 7u);
    EXPECT_EQ(options.csv_path.value(), "a.csv");
    EXPECT_EQ(options.json_path.value(), "b.json");
    EXPECT_TRUE(options.verify);
  }
}

TEST(BenchCommon, ParseOptionsAcceptsJobsSpellings) {
  {
    const char* argv[] = {"bench"};
    CommandLine cli(1, argv);
    EXPECT_EQ(bench::parse_options(cli).jobs, 0u);  // 0 = all hardware threads
  }
  {
    const char* argv[] = {"bench", "--jobs=3"};
    CommandLine cli(2, argv);
    EXPECT_EQ(bench::parse_options(cli).jobs, 3u);
  }
  {
    const char* argv[] = {"bench", "-j4"};
    CommandLine cli(2, argv);
    EXPECT_EQ(bench::parse_options(cli).jobs, 4u);
  }
  {
    const char* argv[] = {"bench", "-j", "5"};
    CommandLine cli(3, argv);
    EXPECT_EQ(bench::parse_options(cli).jobs, 5u);
  }
}

TEST(BenchCommon, CompareTransposesConsistentWithAndWithoutVerify) {
  Rng rng(1);
  suite::SuiteMatrix entry;
  entry.name = "probe";
  entry.set = "test";
  entry.matrix = testing::random_coo(100, 100, 700, rng);
  entry.metrics = suite::compute_metrics(entry.matrix);

  const vsim::MachineConfig config;
  const auto timed = bench::compare_transposes(entry, config, /*verify=*/false);
  const auto verified = bench::compare_transposes(entry, config, /*verify=*/true);
  EXPECT_EQ(timed.hism_cycles, verified.hism_cycles);
  EXPECT_EQ(timed.crs_cycles, verified.crs_cycles);
  EXPECT_GT(timed.speedup, 1.0);
  EXPECT_NEAR(timed.hism_cycles_per_nnz * static_cast<double>(entry.matrix.nnz()),
              static_cast<double>(timed.hism_cycles), 1.0);
}

TEST(BenchCommon, LoadExternalSuiteRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "smtu_bench_common_test";
  std::filesystem::create_directories(dir);
  Rng rng(2);
  const Coo a = testing::random_coo(30, 30, 90, rng);
  const Coo b = suite::gen_tridiagonal(25, rng);
  write_matrix_market_file((dir / "b_second.mtx").string(), b);
  write_matrix_market_file((dir / "a_first.mtx").string(), a);
  write_matrix_market_file((dir / "ignored.txt").string(), a);  // wrong extension

  const auto external = bench::load_external_suite(dir.string());
  ASSERT_EQ(external.size(), 2u);  // .txt skipped
  EXPECT_EQ(external[0].name, "a_first");  // sorted by filename
  EXPECT_EQ(external[1].name, "b_second");
  EXPECT_TRUE(testing::coo_equal(external[0].matrix, a));
  EXPECT_TRUE(testing::coo_equal(external[1].matrix, b));
  EXPECT_EQ(external[0].set, "external");
  EXPECT_GT(external[1].metrics.locality, 0.0);

  std::filesystem::remove_all(dir);
}

TEST(BenchCommonDeathTest, EmptyExternalDirAborts) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "smtu_bench_common_empty";
  std::filesystem::create_directories(dir);
  EXPECT_DEATH(bench::load_external_suite(dir.string()), "no .mtx files");
  std::filesystem::remove_all(dir);
}

TEST(BenchCommonDeathTest, MissingExternalDirFailsWithClearMessage) {
  // A nonexistent --mtxdir must produce our diagnostic, not an unhandled
  // std::filesystem exception.
  EXPECT_DEATH(bench::load_external_suite("/nonexistent/smtu_no_such_dir"),
               "not a readable directory");
}

TEST(ParallelHarness, RunComparisonsIsDeterministicAcrossJobs) {
  // The determinism contract of the parallel harness: any -jN produces the
  // same records (cycles, speedups, full RunStats) in the same order as the
  // serial -j1 run; only wall_ms may differ.
  suite::SuiteOptions suite_options;
  suite_options.scale = 0.02;
  const auto set = suite::build_dsab_set(suite::kSetLocality, suite_options);
  const vsim::MachineConfig config;

  bench::BenchOptions serial;
  serial.suite = suite_options;
  serial.jobs = 1;
  bench::BenchOptions parallel = serial;
  parallel.jobs = 4;

  const auto base = bench::run_comparisons(set, config, serial, "locality",
                                           [](const suite::MatrixMetrics& m) {
                                             return m.locality;
                                           });
  const auto fanned = bench::run_comparisons(set, config, parallel, "locality",
                                             [](const suite::MatrixMetrics& m) {
                                               return m.locality;
                                             });
  ASSERT_EQ(base.size(), set.size());
  ASSERT_EQ(base.size(), fanned.size());
  for (usize i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].name, fanned[i].name) << i;
    EXPECT_DOUBLE_EQ(base[i].metric, fanned[i].metric) << i;
    EXPECT_EQ(base[i].comparison.hism_cycles, fanned[i].comparison.hism_cycles) << i;
    EXPECT_EQ(base[i].comparison.crs_cycles, fanned[i].comparison.crs_cycles) << i;
    EXPECT_DOUBLE_EQ(base[i].comparison.speedup, fanned[i].comparison.speedup) << i;
    // Full stats equality via the canonical serialization (RunStats has no
    // operator==): everything but the host wall time must match bit-for-bit.
    std::ostringstream lhs, rhs;
    {
      JsonWriter a(lhs), b(rhs);
      vsim::write_run_stats_json(a, base[i].comparison.hism_stats);
      vsim::write_run_stats_json(b, fanned[i].comparison.hism_stats);
    }
    EXPECT_EQ(lhs.str(), rhs.str()) << base[i].name;
  }
}

}  // namespace
}  // namespace smtu
