// Exhaustive ground truth on tiny matrices: every one of the 512 possible
// 3x3 sparsity patterns goes through both simulated kernels (at s = 2,
// which forces a two-level hierarchy even at this size), plus a deep
// 8-level hierarchy stress case.
#include <gtest/gtest.h>

#include "formats/csr.hpp"
#include "kernels/crs_transpose.hpp"
#include "kernels/hism_transpose.hpp"
#include "kernels/layout.hpp"
#include "vsim/assembler.hpp"
#include "testing.hpp"

namespace smtu {
namespace {

using testing::coo_equal;
using testing::random_coo;

TEST(KernelExhaustive, EveryThreeByThreePattern) {
  vsim::MachineConfig config;
  config.section = 2;
  for (u32 pattern = 0; pattern < 512; ++pattern) {
    Coo coo(3, 3);
    for (u32 bit = 0; bit < 9; ++bit) {
      if (pattern >> bit & 1) {
        coo.add(bit / 3, bit % 3, static_cast<float>(bit + 1));
      }
    }
    coo.canonicalize();
    const Coo expected = coo.transposed();

    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const auto hism_result = kernels::run_hism_transpose(hism, config);
    ASSERT_TRUE(coo_equal(hism_result.transposed.to_coo(), expected))
        << "HiSM pattern " << pattern;

    const auto crs_result = kernels::run_crs_transpose(Csr::from_coo(coo), config);
    ASSERT_TRUE(coo_equal(crs_result.transposed, expected)) << "CRS pattern " << pattern;
  }
}

TEST(KernelExhaustive, EveryFourByFourDiagonalAndAntiDiagonalCombination) {
  // All 256 combinations of diagonal/anti-diagonal occupancy at s = 2.
  vsim::MachineConfig config;
  config.section = 2;
  for (u32 pattern = 0; pattern < 256; ++pattern) {
    Coo coo(4, 4);
    for (u32 bit = 0; bit < 4; ++bit) {
      if (pattern >> bit & 1) coo.add(bit, bit, static_cast<float>(bit + 1));
      if (pattern >> (bit + 4) & 1) coo.add(bit, 3 - bit, static_cast<float>(bit + 10));
    }
    coo.canonicalize();
    const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
    const auto result = kernels::run_hism_transpose(hism, config);
    ASSERT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()))
        << "pattern " << pattern;
  }
}

TEST(KernelExhaustive, EightLevelHierarchyRecursionDepth) {
  // s = 2 on a 256x256 matrix: ceil(log2 256) = 8 hierarchy levels — the
  // deepest recursion the kernel's simulated call stack will realistically
  // see (s = 64 covers 2^48-sized matrices at the same depth).
  Rng rng(42);
  const Coo coo = random_coo(256, 256, 600, rng);
  vsim::MachineConfig config;
  config.section = 2;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);
  ASSERT_EQ(hism.num_levels(), 8u);
  const auto result = kernels::run_hism_transpose(hism, config);
  EXPECT_TRUE(coo_equal(result.transposed.to_coo(), coo.transposed()));
  EXPECT_TRUE(result.transposed.validate());
}

TEST(KernelExhaustive, DoubleKernelTransposeRestoresImageBytes) {
  // The in-place property at its strongest: transposing twice restores the
  // memory image *byte for byte* (positions return to row-major order,
  // pointers and lengths to their original slots).
  Rng rng(7);
  const Coo coo = random_coo(120, 120, 900, rng);
  vsim::MachineConfig config;
  config.section = 8;
  const HismMatrix hism = HismMatrix::from_coo(coo, config.section);

  const vsim::Program program = vsim::assemble(kernels::hism_transpose_source());
  vsim::Machine machine(config);
  const HismImage image = kernels::stage_hism(machine, hism);
  // Compare the image region only: the call stack below it legitimately
  // accumulates residue across runs.
  auto snapshot = [&] {
    const auto raw = machine.memory().raw();
    return std::vector<u8>(raw.begin() + static_cast<std::ptrdiff_t>(image.base),
                           raw.begin() + static_cast<std::ptrdiff_t>(image.base +
                                                                     image.bytes.size()));
  };
  const std::vector<u8> original = snapshot();

  auto run_once = [&] {
    machine.set_sreg(1, image.root_addr);
    machine.set_sreg(2, image.root_len);
    machine.set_sreg(3, image.levels - 1);
    machine.set_sreg(vsim::kRegSp, kernels::kStackTop);
    machine.run(program);
  };
  run_once();
  EXPECT_NE(snapshot(), original);  // the transpose really changed the image
  run_once();
  EXPECT_EQ(snapshot(), original);
}

}  // namespace
}  // namespace smtu
