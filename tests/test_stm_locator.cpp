#include <gtest/gtest.h>

#include "stm/locator.hpp"
#include "support/rng.hpp"

namespace smtu {
namespace {

std::vector<bool> bits_from_string(const std::string& pattern) {
  std::vector<bool> bits;
  bits.reserve(pattern.size());
  for (const char c : pattern) bits.push_back(c == '1');
  return bits;
}

TEST(Locator, FindsFirstOnes) {
  const auto result = locate_first_ones(bits_from_string("01011010"), 3);
  ASSERT_EQ(result.positions, (std::vector<u32>{1, 3, 4}));
  EXPECT_FALSE(result.overflow);
}

TEST(Locator, OverflowWhenFewerOnesThanBandwidth) {
  const auto result = locate_first_ones(bits_from_string("00010001"), 4);
  ASSERT_EQ(result.positions, (std::vector<u32>{3, 7}));
  EXPECT_TRUE(result.overflow);
}

TEST(Locator, EmptyLineOverflowsImmediately) {
  const auto result = locate_first_ones(bits_from_string("00000000"), 2);
  EXPECT_TRUE(result.positions.empty());
  EXPECT_TRUE(result.overflow);
}

TEST(Locator, BandwidthOneTakesFirstBit) {
  const auto result = locate_first_ones(bits_from_string("11111111"), 1);
  ASSERT_EQ(result.positions, (std::vector<u32>{0}));
  EXPECT_FALSE(result.overflow);
}

TEST(Locator, FullLineNoOverflow) {
  const auto result = locate_first_ones(bits_from_string("1111"), 4);
  ASSERT_EQ(result.positions, (std::vector<u32>{0, 1, 2, 3}));
  EXPECT_FALSE(result.overflow);
}

TEST(LocatorCircuit, ExhaustiveEquivalenceWidth8) {
  // Every 8-bit indicator pattern, every bandwidth 1..8: the structural
  // circuit model must match the behavioral scan bit-exactly.
  for (u32 pattern = 0; pattern < 256; ++pattern) {
    std::vector<bool> bits(8);
    for (u32 i = 0; i < 8; ++i) bits[i] = (pattern >> i) & 1;
    for (u32 bandwidth = 1; bandwidth <= 8; ++bandwidth) {
      const auto behavioral = locate_first_ones(bits, bandwidth);
      const auto circuit = locate_first_ones_circuit(bits, bandwidth);
      ASSERT_EQ(behavioral.positions, circuit.positions)
          << "pattern=" << pattern << " B=" << bandwidth;
      ASSERT_EQ(behavioral.overflow, circuit.overflow)
          << "pattern=" << pattern << " B=" << bandwidth;
    }
  }
}

TEST(LocatorCircuit, RandomizedEquivalenceWidth64) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<bool> bits(64);
    for (usize i = 0; i < 64; ++i) bits[i] = rng.chance(0.3);
    const u32 bandwidth = static_cast<u32>(rng.range(1, 8));
    const auto behavioral = locate_first_ones(bits, bandwidth);
    const auto circuit = locate_first_ones_circuit(bits, bandwidth);
    ASSERT_EQ(behavioral.positions, circuit.positions);
    ASSERT_EQ(behavioral.overflow, circuit.overflow);
  }
}

}  // namespace
}  // namespace smtu
