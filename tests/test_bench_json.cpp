// Golden/schema test for the canonical machine-readable benchmark artifact:
// runs the real reproduce_all binary at a tiny suite scale and validates the
// smtu-repro-v1 document it writes. SMTU_REPRODUCE_ALL_BIN is injected by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "support/json.hpp"
#include "vsim/json_export.hpp"

namespace smtu {
namespace {

JsonValue run_reproduce_all() {
  const std::string report = "test_bench_json_report.md";
  const std::string artifact = "test_bench_json_repro.json";
  const std::string command = std::string(SMTU_REPRODUCE_ALL_BIN) + " --scale=0.02" +
                              " --out=" + report + " --json=" + artifact +
                              " > test_bench_json_stdout.txt 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_EQ(status, 0) << "reproduce_all failed: " << command;

  std::ifstream in(artifact);
  EXPECT_TRUE(in.is_open()) << "reproduce_all did not write " << artifact;
  std::ostringstream text;
  text << in.rdbuf();

  std::string error;
  auto doc = parse_json(text.str(), &error);
  EXPECT_TRUE(doc.has_value()) << "invalid JSON: " << error;
  std::remove(report.c_str());
  std::remove(artifact.c_str());
  std::remove("test_bench_json_stdout.txt");
  return doc.has_value() ? std::move(*doc) : JsonValue();
}

void expect_finite(const JsonValue& value, const char* what) {
  ASSERT_TRUE(value.is_number()) << what;
  EXPECT_TRUE(std::isfinite(value.as_double())) << what;
}

void check_summary(const JsonValue& summary) {
  ASSERT_TRUE(summary.is_object());
  EXPECT_GE(summary.at("count").as_u64(), 1u);
  expect_finite(summary.at("min_speedup"), "min_speedup");
  expect_finite(summary.at("max_speedup"), "max_speedup");
  expect_finite(summary.at("avg_speedup"), "avg_speedup");
  EXPECT_LE(summary.at("min_speedup").as_double(), summary.at("avg_speedup").as_double());
  EXPECT_LE(summary.at("avg_speedup").as_double(), summary.at("max_speedup").as_double());
}

TEST(BenchJson, ReproduceAllEmitsSchemaValidArtifact) {
  const JsonValue doc = run_reproduce_all();
  ASSERT_TRUE(doc.is_object());

  // Document header: schema id, bench name, self-describing configuration.
  EXPECT_EQ(doc.at("schema").as_string(), "smtu-repro-v1");
  EXPECT_EQ(doc.at("bench").as_string(), "reproduce_all");
  const JsonValue& config = doc.at("config");
  EXPECT_GE(config.at("section").as_u64(), 1u);
  EXPECT_TRUE(config.at("stm").is_object());
  EXPECT_DOUBLE_EQ(doc.at("suite").at("scale").as_double(), 0.02);

  // Harness facts: resolved worker count and (nondeterministic) wall time.
  const JsonValue& harness = doc.at("harness");
  EXPECT_GE(harness.at("jobs").as_u64(), 1u);
  expect_finite(harness.at("wall_ms"), "harness wall_ms");
  EXPECT_GE(harness.at("wall_ms").as_double(), 0.0);

  // Fig. 10 grid: utilization[bandwidth][line] in (0, 1].
  const JsonValue& fig10 = doc.at("fig10");
  const usize num_bandwidths = fig10.at("bandwidths").size();
  const usize num_lines = fig10.at("lines").size();
  ASSERT_GE(num_bandwidths, 1u);
  ASSERT_GE(num_lines, 1u);
  const JsonValue& grid = fig10.at("utilization");
  ASSERT_EQ(grid.size(), num_bandwidths);
  for (const JsonValue& row : grid.items()) {
    ASSERT_EQ(row.size(), num_lines);
    for (const JsonValue& cell : row.items()) {
      expect_finite(cell, "fig10 utilization");
      EXPECT_GT(cell.as_double(), 0.0);
      EXPECT_LE(cell.as_double(), 1.0);
    }
  }

  // Per-figure speedup series with paper reference points.
  const JsonValue& figures = doc.at("figures");
  ASSERT_EQ(figures.size(), 3u);
  for (const JsonValue& figure : figures.items()) {
    EXPECT_FALSE(figure.at("figure").as_string().empty());
    EXPECT_FALSE(figure.at("set").as_string().empty());
    check_summary(figure.at("summary"));
    expect_finite(figure.at("paper").at("avg_speedup"), "paper avg");
    const JsonValue& matrices = figure.at("matrices");
    ASSERT_GE(matrices.size(), 1u);
    for (const JsonValue& record : matrices.items()) {
      EXPECT_FALSE(record.at("name").as_string().empty());
      EXPECT_GE(record.at("nnz").as_u64(), 1u);
      EXPECT_GT(record.at("speedup").as_double(), 0.0);
      EXPECT_GT(record.at("hism_cycles").as_u64(), 0u);
      EXPECT_GT(record.at("crs_cycles").as_u64(), 0u);
      // The embedded cycle statistics round-trip through the RunStats
      // reader, i.e. every counter is present and numeric.
      const auto hism = vsim::run_stats_from_json(record.at("hism"));
      ASSERT_TRUE(hism.has_value());
      EXPECT_EQ(hism->cycles, record.at("hism_cycles").as_u64());
      EXPECT_GT(hism->stm_blocks, 0u);
      EXPECT_GT(hism->vmem_busy_cycles + hism->valu_busy_cycles + hism->stm_busy_cycles, 0u);
      const auto crs = vsim::run_stats_from_json(record.at("crs"));
      ASSERT_TRUE(crs.has_value());
      EXPECT_EQ(crs->cycles, record.at("crs_cycles").as_u64());
      EXPECT_EQ(crs->stm_blocks, 0u);  // the CRS kernel never touches the STM
    }
  }

  check_summary(doc.at("headline"));
  const JsonValue& storage = doc.at("storage");
  EXPECT_GT(storage.at("hism_crs_byte_ratio_avg").as_double(), 0.0);
  EXPECT_GT(storage.at("overhead_fraction_avg").as_double(), 0.0);

  // The host cache-counter section (bench_diff skips it, like harness).
  // This run had no --sim-cache, so that counter block is null; every
  // simulated program and staged matrix was a cold miss at least once.
  const JsonValue& host = doc.at("host");
  EXPECT_GT(host.at("program_cache").at("misses").as_u64(), 0u);
  EXPECT_GT(host.at("stage_cache").at("misses").as_u64(), 0u);
  EXPECT_TRUE(host.at("sim_cache").is_null());

  // Stable top-level key order — downstream tooling (bench_diff, plotting)
  // may rely on it for readable diffs.
  std::vector<std::string> keys;
  for (const auto& [key, value] : doc.members()) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::string>{"schema", "bench", "config", "suite", "harness",
                                            "host", "fig10", "figures", "headline",
                                            "storage"}));
}

}  // namespace
}  // namespace smtu
