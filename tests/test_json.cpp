#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "support/json.hpp"

namespace smtu {
namespace {

TEST(Json, SimpleObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name");
  json.value("smtu");
  json.key("count");
  json.value(i64{42});
  json.key("ratio");
  json.value(0.5);
  json.key("ok");
  json.value(true);
  json.key("missing");
  json.null();
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(out.str(), R"({"name":"smtu","count":42,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(Json, NestedArraysAndObjects) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(i64{1});
  json.begin_object();
  json.key("inner");
  json.begin_array();
  json.value(i64{2});
  json.value(i64{3});
  json.end_array();
  json.end_object();
  json.value(i64{4});
  json.end_array();
  EXPECT_EQ(out.str(), R"([1,{"inner":[2,3]},4])");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape(std::string("ctl\x01", 4)), "ctl\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(Json, TableSerialization) {
  TextTable table({"matrix", "nnz", "speedup"});
  table.add_row({"qc324-syn", "60006", "21.2"});
  table.add_row({"bcspwr10-syn", "60002", "2.8"});
  std::ostringstream out;
  write_table_as_json(out, table);
  EXPECT_EQ(out.str(),
            "[{\"matrix\":\"qc324-syn\",\"nnz\":60006,\"speedup\":21.2},"
            "{\"matrix\":\"bcspwr10-syn\",\"nnz\":60002,\"speedup\":2.8}]\n");
}

TEST(Json, TableKeepsNonNumericCellsAsStrings) {
  TextTable table({"a", "b"});
  table.add_row({"1.5x", "12%"});
  std::ostringstream out;
  write_table_as_json(out, table);
  EXPECT_EQ(out.str(), "[{\"a\":\"1.5x\",\"b\":\"12%\"}]\n");
}

TEST(JsonDeathTest, MisuseAborts) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    EXPECT_DEATH(json.value(i64{1}), "needs a key");
  }
  {
    JsonWriter json(out);
    json.begin_array();
    EXPECT_DEATH(json.key("nope"), "outside of an object");
  }
  {
    JsonWriter json(out);
    json.begin_array();
    EXPECT_DEATH(json.end_object(), "mismatched");
  }
}

}  // namespace
}  // namespace smtu
