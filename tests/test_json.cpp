#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "support/json.hpp"

namespace smtu {
namespace {

TEST(Json, SimpleObject) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name");
  json.value("smtu");
  json.key("count");
  json.value(i64{42});
  json.key("ratio");
  json.value(0.5);
  json.key("ok");
  json.value(true);
  json.key("missing");
  json.null();
  json.end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(out.str(), R"({"name":"smtu","count":42,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(Json, NestedArraysAndObjects) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(i64{1});
  json.begin_object();
  json.key("inner");
  json.begin_array();
  json.value(i64{2});
  json.value(i64{3});
  json.end_array();
  json.end_object();
  json.value(i64{4});
  json.end_array();
  EXPECT_EQ(out.str(), R"([1,{"inner":[2,3]},4])");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonWriter::escape(std::string("ctl\x01", 4)), "ctl\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(Json, TableSerialization) {
  TextTable table({"matrix", "nnz", "speedup"});
  table.add_row({"qc324-syn", "60006", "21.2"});
  table.add_row({"bcspwr10-syn", "60002", "2.8"});
  std::ostringstream out;
  write_table_as_json(out, table);
  EXPECT_EQ(out.str(),
            "[{\"matrix\":\"qc324-syn\",\"nnz\":60006,\"speedup\":21.2},"
            "{\"matrix\":\"bcspwr10-syn\",\"nnz\":60002,\"speedup\":2.8}]\n");
}

TEST(Json, TableKeepsNonNumericCellsAsStrings) {
  TextTable table({"a", "b"});
  table.add_row({"1.5x", "12%"});
  std::ostringstream out;
  write_table_as_json(out, table);
  EXPECT_EQ(out.str(), "[{\"a\":\"1.5x\",\"b\":\"12%\"}]\n");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_EQ(parse_json("true")->as_bool(), true);
  EXPECT_EQ(parse_json("false")->as_bool(), false);
  EXPECT_EQ(parse_json("42")->as_i64(), 42);
  EXPECT_EQ(parse_json("-7")->as_i64(), -7);
  EXPECT_DOUBLE_EQ(parse_json("-3.5")->as_double(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1.25e2")->as_double(), 125.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
  EXPECT_EQ(parse_json("  [1, 2]  ")->size(), 2u);
}

TEST(JsonParse, ObjectPreservesMemberOrder) {
  const auto doc = parse_json(R"({"zeta":1,"alpha":2,"mid":3})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->size(), 3u);
  EXPECT_EQ(doc->members()[0].first, "zeta");
  EXPECT_EQ(doc->members()[1].first, "alpha");
  EXPECT_EQ(doc->members()[2].first, "mid");
  EXPECT_EQ(doc->at("alpha").as_u64(), 2u);
  EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(JsonParse, NestedStructure) {
  const auto doc = parse_json(R"({"rows":[{"name":"a","v":[1,2]},{"name":"b","v":[]}]})");
  ASSERT_TRUE(doc.has_value());
  const JsonValue& rows = doc->at("rows");
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows.items()[0].at("name").as_string(), "a");
  EXPECT_EQ(rows.items()[0].at("v").items()[1].as_i64(), 2);
  EXPECT_EQ(rows.items()[1].at("v").size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd")")->as_string(), "a\"b\\c\nd");
  EXPECT_EQ(parse_json("\"\\u0041\\u00e9\"")->as_string(), "A\xc3\xa9");
  // A \u surrogate pair decodes to one 4-byte UTF-8 sequence (U+1F600).
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"")->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, MalformedInputsReportOffset) {
  std::string error;
  EXPECT_FALSE(parse_json("", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} extra", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);
  EXPECT_NE(error.find("at byte"), std::string::npos);
  EXPECT_FALSE(parse_json("\"unterminated", &error).has_value());
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(parse_json("nul", &error).has_value());
  EXPECT_FALSE(parse_json("01", &error).has_value());
  EXPECT_FALSE(parse_json("\"\x01\"", &error).has_value());
  EXPECT_FALSE(parse_json(R"("\ud83d")", &error).has_value());
}

TEST(JsonParse, RejectsRunawayNesting) {
  const std::string deep(400, '[');
  std::string error;
  EXPECT_FALSE(parse_json(deep + std::string(400, ']'), &error).has_value());
  EXPECT_NE(error.find("nesting"), std::string::npos);
}

TEST(JsonParse, WriterOutputRoundTrips) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("text");
  json.value("line\nbreak \"quoted\"");
  json.key("big");
  json.value(u64{1} << 53);
  json.key("neg");
  json.value(i64{-12});
  json.key("list");
  json.begin_array();
  json.value(0.25);
  json.value(false);
  json.null();
  json.end_array();
  json.end_object();
  ASSERT_TRUE(json.complete());

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("text").as_string(), "line\nbreak \"quoted\"");
  EXPECT_EQ(doc->at("big").as_u64(), u64{1} << 53);
  EXPECT_EQ(doc->at("neg").as_i64(), -12);
  EXPECT_DOUBLE_EQ(doc->at("list").items()[0].as_double(), 0.25);
  EXPECT_EQ(doc->at("list").items()[1].as_bool(), false);
  EXPECT_TRUE(doc->at("list").items()[2].is_null());
}

TEST(JsonDeathTest, MisuseAborts) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    EXPECT_DEATH(json.value(i64{1}), "needs a key");
  }
  {
    JsonWriter json(out);
    json.begin_array();
    EXPECT_DEATH(json.key("nope"), "outside of an object");
  }
  {
    JsonWriter json(out);
    json.begin_array();
    EXPECT_DEATH(json.end_object(), "mismatched");
  }
}

}  // namespace
}  // namespace smtu
