// The observability layer's C++ side: RunStats/MachineConfig/STM-stats JSON
// emission, the RunStats round trip, and the Chrome trace-event export —
// each validated by parsing the emitted text back with support/json.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "stm/stats_json.hpp"
#include "support/json.hpp"
#include "vsim/assembler.hpp"
#include "vsim/json_export.hpp"
#include "vsim/machine.hpp"
#include "vsim/trace.hpp"

namespace smtu {
namespace {

vsim::RunStats distinct_stats() {
  vsim::RunStats stats;
  u64 next = 101;
  stats.cycles = next++;
  stats.instructions = next++;
  stats.scalar_instructions = next++;
  stats.vector_instructions = next++;
  stats.vector_elements = next++;
  stats.mem_contiguous_bytes = next++;
  stats.mem_indexed_elements = next++;
  stats.stm_blocks = next++;
  stats.stm_write_cycles = next++;
  stats.stm_read_cycles = next++;
  stats.stm_elements = next++;
  stats.vmem_busy_cycles = next++;
  stats.valu_busy_cycles = next++;
  stats.stm_busy_cycles = next++;
  return stats;
}

std::string to_json(const vsim::RunStats& stats) {
  std::ostringstream out;
  JsonWriter json(out);
  vsim::write_run_stats_json(json, stats);
  EXPECT_TRUE(json.complete());
  return out.str();
}

TEST(RunStatsJson, RoundTripsEveryCounter) {
  const vsim::RunStats stats = distinct_stats();
  const auto doc = parse_json(to_json(stats));
  ASSERT_TRUE(doc.has_value());
  const auto back = vsim::run_stats_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cycles, stats.cycles);
  EXPECT_EQ(back->instructions, stats.instructions);
  EXPECT_EQ(back->scalar_instructions, stats.scalar_instructions);
  EXPECT_EQ(back->vector_instructions, stats.vector_instructions);
  EXPECT_EQ(back->vector_elements, stats.vector_elements);
  EXPECT_EQ(back->mem_contiguous_bytes, stats.mem_contiguous_bytes);
  EXPECT_EQ(back->mem_indexed_elements, stats.mem_indexed_elements);
  EXPECT_EQ(back->stm_blocks, stats.stm_blocks);
  EXPECT_EQ(back->stm_write_cycles, stats.stm_write_cycles);
  EXPECT_EQ(back->stm_read_cycles, stats.stm_read_cycles);
  EXPECT_EQ(back->stm_elements, stats.stm_elements);
  EXPECT_EQ(back->vmem_busy_cycles, stats.vmem_busy_cycles);
  EXPECT_EQ(back->valu_busy_cycles, stats.valu_busy_cycles);
  EXPECT_EQ(back->stm_busy_cycles, stats.stm_busy_cycles);
}

TEST(RunStatsJson, RejectsMissingOrNonNumericCounter) {
  const auto doc = parse_json(to_json(distinct_stats()));
  ASSERT_TRUE(doc.has_value());

  // Drop one member at a time: every counter must be required.
  for (usize skip = 0; skip < doc->size(); ++skip) {
    std::vector<JsonValue::Member> members = doc->members();
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(skip));
    EXPECT_FALSE(
        vsim::run_stats_from_json(JsonValue::make_object(std::move(members))).has_value());
  }

  std::vector<JsonValue::Member> members = doc->members();
  members[0].second = JsonValue::make_string("not a number");
  EXPECT_FALSE(
      vsim::run_stats_from_json(JsonValue::make_object(std::move(members))).has_value());
  EXPECT_FALSE(vsim::run_stats_from_json(JsonValue::make_number(3.0)).has_value());
}

TEST(MachineConfigJson, EmitsTimingKnobsAndStmBlock) {
  vsim::MachineConfig config;
  config.section = 32;
  config.stm.bandwidth = 8;
  std::ostringstream out;
  JsonWriter json(out);
  vsim::write_machine_config_json(json, config);
  ASSERT_TRUE(json.complete());

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("section").as_u64(), 32u);
  EXPECT_EQ(doc->at("lanes").as_u64(), config.lanes);
  EXPECT_EQ(doc->at("chaining").as_bool(), config.chaining);
  EXPECT_EQ(doc->at("mem_startup").as_u64(), config.mem_startup);
  EXPECT_EQ(doc->at("stm").at("bandwidth").as_u64(), 8u);
  EXPECT_EQ(doc->at("stm").at("lines").as_u64(), config.stm.lines);
}

TEST(StmStatsJson, EmitsCountersAndDerivedUtilization) {
  StmUnit::Stats stats;
  stats.blocks = 3;
  stats.elements_in = 40;
  stats.elements_out = 40;
  stats.write_cycles = 10;
  stats.read_cycles = 10;
  stats.write_batches = 5;
  stats.read_batches = 5;
  StmConfig config;
  config.bandwidth = 4;

  std::ostringstream out;
  JsonWriter json(out);
  write_stm_stats_json(json, stats, config);
  ASSERT_TRUE(json.complete());

  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("blocks").as_u64(), 3u);
  EXPECT_EQ(doc->at("elements_in").as_u64(), 40u);
  EXPECT_EQ(doc->at("elements_out").as_u64(), 40u);
  EXPECT_EQ(doc->at("write_cycles").as_u64(), 10u);
  EXPECT_EQ(doc->at("read_cycles").as_u64(), 10u);
  EXPECT_EQ(doc->at("write_batches").as_u64(), 5u);
  EXPECT_EQ(doc->at("read_batches").as_u64(), 5u);
  // (40 + 40) / ((10 + 10) * 4) = 1.0
  EXPECT_DOUBLE_EQ(doc->at("buffer_utilization").as_double(), 1.0);
}

// A small program that exercises all four trace tracks: scalar setup, a
// contiguous vector load/store (vmem), a vector add (valu), and an STM
// fill/drain pair.
const char* kAllUnitsProgram = R"(
main:
    li    r1, 256
    li    r2, 8
    mv    r6, r2
    setvl r3, r2
    v_iota vr1
    v_add vr2, vr1, vr1
    v_st  vr2, (r1)
    v_ld  vr3, (r1)
    icm
    li    r4, 4096
    li    r5, 8192
    ssvl  r6
    v_ldb vr1, vr2, r4, r5
    v_stcr vr1, vr2
    v_ldcc vr4, vr5
    halt
)";

TEST(ChromeTrace, ExportsValidTraceEventDocument) {
  vsim::Machine machine(vsim::MachineConfig{});
  machine.memory().ensure(0, 1 << 16);
  // Stage unique positions so the s^2-block fill does not collide.
  for (u32 i = 0; i < 8; ++i) {
    machine.memory().write_u8(4096 + 2 * i, static_cast<u8>(i));
    machine.memory().write_u8(4096 + 2 * i + 1, static_cast<u8>(i));
    machine.memory().write_u32(8192 + 4 * i, i);
  }
  vsim::ExecutionTrace trace;
  machine.attach_trace(&trace);
  machine.run(vsim::assemble(kAllUnitsProgram));
  ASSERT_GT(trace.events().size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);

  std::ostringstream out;
  vsim::write_chrome_trace(out, trace, "unit-test");
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value()) << out.str();
  EXPECT_EQ(doc->at("dropped").as_u64(), 0u);
  EXPECT_EQ(doc->at("displayTimeUnit").as_string(), "ns");

  const JsonValue& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());

  usize x_events = 0;
  std::set<std::string> thread_names;
  std::set<u64> x_tids;
  for (const JsonValue& event : events.items()) {
    const std::string& phase = event.at("ph").as_string();
    EXPECT_EQ(event.at("pid").as_u64(), 1u);
    if (phase == "M") {
      if (event.at("name").as_string() == "process_name") {
        EXPECT_EQ(event.at("args").at("name").as_string(), "unit-test");
      } else if (event.at("name").as_string() == "thread_name") {
        thread_names.insert(event.at("args").at("name").as_string());
      }
      continue;
    }
    ASSERT_EQ(phase, "X");
    ++x_events;
    x_tids.insert(event.at("tid").as_u64());
    EXPECT_GE(event.at("dur").as_u64(), 1u);
    const JsonValue& args = event.at("args");
    EXPECT_LE(args.at("issue").as_u64(), args.at("start").as_u64());
    EXPECT_LE(args.at("start").as_u64(), args.at("last").as_u64());
    EXPECT_EQ(event.at("ts").as_u64(), args.at("start").as_u64());
  }
  EXPECT_EQ(x_events, trace.events().size());
  EXPECT_EQ(thread_names, (std::set<std::string>{"scalar", "vmem", "valu", "stm"}));
  // The program touched every unit.
  EXPECT_EQ(x_tids, (std::set<u64>{0, 1, 2, 3}));
}

TEST(ChromeTrace, ReportsDroppedEvents) {
  vsim::ExecutionTrace trace(2);
  for (u32 i = 0; i < 5; ++i) {
    trace.record({i, vsim::Op::kNop, 0, vsim::TraceUnit::kScalar, i, i, i, i});
  }
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped(), 3u);

  std::ostringstream out;
  vsim::write_chrome_trace(out, trace);
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("dropped").as_u64(), 3u);

  // The text renderers surface the same truncation.
  std::ostringstream table;
  trace.print_table(table);
  EXPECT_NE(table.str().find("3 events beyond capacity"), std::string::npos);
  std::ostringstream timeline;
  trace.print_timeline(timeline);
  EXPECT_NE(timeline.str().find("3 events beyond capacity"), std::string::npos);
}

}  // namespace
}  // namespace smtu
