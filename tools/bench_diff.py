#!/usr/bin/env python3
"""Compare two smtu benchmark JSON files and flag perf regressions.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold=0.05] [--all]
                        [--allow-new]

Accepts any JSON the benchmark binaries emit: "smtu-bench-v1" /
"smtu-repro-v1" reports (``--json=`` on the comparison benches and
``reproduce_all``) as well as the plain table-array form the grid/ablation
benches write. Both documents are flattened to dotted-path -> number maps;
array elements carrying a "name"/"matrix" field are keyed by that name, so
reordering a suite does not produce spurious diffs.

A metric's direction decides what counts as a regression:
  * higher-is-better (key contains "speedup" or "utilization", or the
    serve reports' virtual-throughput "krps" leaves):
        regression when NEW < OLD * (1 - threshold)
  * lower-is-better (key contains "cycles", or ends in "_vus" — the serve
    reports' deterministic virtual-time latencies, docs/SERVING.md):
        regression when NEW > OLD * (1 + threshold)
  * exact (deterministic scheduler counters such as shed_requests /
    coalesced_requests): any difference at all fails, threshold ignored
  * anything else (sizes, counts, configuration echoes) is reported with
    --all but never fails the run.

Host-timing keys are ignored entirely: any key containing "wall_ms" (the
per-matrix and harness wall-time measurements) or "per_sec" (the
interpreter-throughput rates micro_host --interp-json emits) is
nondeterministic by nature, and "jobs"/"harness" only describe how the run
was executed. The "host" section (program/stage/sim cache hit counters and
dispatch throughput records — HACKING.md "Host performance") likewise
depends on process history, not on the simulated machine. The "telemetry"
section (docs/TELEMETRY.md) is skipped wholesale for the same reason — it
only exists on --telemetry runs, so a telemetry-on report diffs clean at
threshold 0 against a telemetry-off one — and, defense in depth, telemetry
metric names carry unit suffixes ("_us", "_pct", "_peak", "_total") that
are skipped wherever they appear, so stray latency/hit-count leaves can
never gate CI. None of them can gate, appear as [new]/[gone], or show
under --all.

Schema drift is gated, not just reported: a metric present in OLD but
missing from NEW ([gone]) always fails — a silently vanished counter would
otherwise hide a regression forever. Metrics only in NEW ([new]) also fail
unless --allow-new is passed, the intended escape hatch for PRs that add
counters (e.g. a new "profile" section) and update the baseline in the same
change.

Exit status: 0 = no regression, 1 = at least one regression or gated
schema drift, 2 = usage / unreadable input. Improvements are reported but
never fail.
"""

import argparse
import json
import sys

SKIPPED_KEYS = {"schema", "bench", "seed", "scale", "jobs", "harness", "host",
                "telemetry"}

# Any key containing one of these fragments is host-timing noise, never a
# simulated metric; skipped at flatten time so it cannot gate or diff.
# "per_sec" covers the interpreter-throughput records micro_host emits
# (insts_per_sec / cycles_per_sec) plus the serve reports' req_per_sec;
# "wall_us" covers the serve reports' wall_us/sim_wall_us wall-clock
# measurements (also caught by the "_us" suffix rule — defense in depth,
# since these must never gate a "smtu-serve-v1" diff at threshold 0).
TIMING_KEY_FRAGMENTS = ("wall_ms", "wall_us", "per_sec")

# Telemetry metric names end in a unit suffix (docs/TELEMETRY.md naming
# scheme). Suffix (not substring) matched so simulated byte counters such as
# "mem_contiguous_bytes" / "storage_bytes" keep gating.
TELEMETRY_KEY_SUFFIXES = ("_us", "_pct", "_peak", "_total")


def skipped_key(key):
    """True for keys that must never gate: run descriptors, host timing,
    and telemetry metric names (suffix-matched by unit)."""
    if key in SKIPPED_KEYS:
        return True
    if any(fragment in key for fragment in TIMING_KEY_FRAGMENTS):
        return True
    return key.endswith(TELEMETRY_KEY_SUFFIXES)


def flatten(value, prefix, out):
    """Collect numeric leaves of `value` into out[dotted-path]."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
        return
    if isinstance(value, dict):
        for key, child in value.items():
            if skipped_key(key):
                continue
            flatten(child, f"{prefix}.{key}" if prefix else key, out)
        return
    if isinstance(value, list):
        for index, child in enumerate(value):
            label = str(index)
            if isinstance(child, dict):
                name = child.get("name") or child.get("matrix")
                if isinstance(name, str):
                    label = name
            flatten(child, f"{prefix}[{label}]", out)


# Deterministic scheduler counters from the serve reports' "virtual"
# section (docs/SERVING.md determinism contract): pure functions of
# (trace, options), so any drift at all is a regression — no threshold.
EXACT_LEAVES = ("shed_requests", "coalesced_requests", "warm_requests",
                "simulated_requests", "admitted_requests", "distinct_sims",
                "max_queue_depth")


def direction(path):
    """'up' = higher is better, 'down' = lower is better,
    'exact' = must match bit for bit, None = neutral."""
    leaf = path.rsplit(".", 1)[-1]
    if "speedup" in leaf or "utilization" in leaf:
        return "up"
    if "cycles" in leaf:
        return "down"
    # Virtual-time serving metrics: latencies/makespans in virtual
    # microseconds ("_vus" — deliberately not "_us", which the telemetry
    # suffix rule skips) are lower-is-better; virtual throughput is
    # higher-is-better. Both are deterministic (docs/SERVING.md).
    if leaf.endswith("_vus"):
        return "down"
    if "krps" in leaf:
        return "up"
    if leaf in EXACT_LEAVES:
        return "exact"
    return None


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_diff: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline JSON file")
    parser.add_argument("new", help="candidate JSON file")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative regression tolerance (default 0.05 = 5%%)")
    parser.add_argument("--all", action="store_true",
                        help="also print unchanged and neutral metrics")
    parser.add_argument("--allow-new", action="store_true",
                        help="do not fail on metrics present only in NEW "
                             "(use when a PR intentionally adds counters)")
    args = parser.parse_args()

    old_values, new_values = {}, {}
    flatten(load(args.old), "", old_values)
    flatten(load(args.new), "", new_values)

    only_old = sorted(set(old_values) - set(new_values))
    only_new = sorted(set(new_values) - set(old_values))
    for path in only_old:
        print(f"  [gone]    {path} (was {old_values[path]:g})")
    for path in only_new:
        print(f"  [new]     {path} = {new_values[path]:g}")

    regressions = improvements = compared = 0
    for path in sorted(set(old_values) & set(new_values)):
        old, new = old_values[path], new_values[path]
        sense = direction(path)
        if sense is None:
            if args.all and old != new:
                print(f"  [info]    {path}: {old:g} -> {new:g}")
            continue
        compared += 1
        if old == 0.0:
            delta = 0.0 if new == 0.0 else float("inf")
        else:
            delta = (new - old) / old
        if sense == "exact":
            if old != new:
                regressions += 1
                print(f"  [REGRESS] {path}: {old:g} -> {new:g} "
                      f"(deterministic counter must match exactly)")
            elif args.all:
                print(f"  [ok]      {path}: {old:g} (exact)")
            continue
        worse = -delta if sense == "up" else delta
        if worse > args.threshold:
            regressions += 1
            print(f"  [REGRESS] {path}: {old:g} -> {new:g} "
                  f"({delta:+.1%}, {'lower' if sense == 'up' else 'higher'} is worse)")
        elif worse < -args.threshold:
            improvements += 1
            print(f"  [better]  {path}: {old:g} -> {new:g} ({delta:+.1%})")
        elif args.all and old != new:
            print(f"  [ok]      {path}: {old:g} -> {new:g} ({delta:+.1%})")

    gated_new = 0 if args.allow_new else len(only_new)
    print(f"bench_diff: {compared} metrics compared, {regressions} regression(s), "
          f"{improvements} improvement(s), threshold {args.threshold:.0%} "
          f"({len(only_old)} gone, {len(only_new)} new"
          f"{', allowed' if args.allow_new and only_new else ''})")
    if only_old:
        print("bench_diff: FAIL — metrics vanished from NEW (see [gone] above)")
    if gated_new:
        print("bench_diff: FAIL — NEW introduces metrics absent from OLD; "
              "pass --allow-new if this is intentional")
    return 1 if regressions or only_old or gated_new else 0


if __name__ == "__main__":
    sys.exit(main())
