#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py gating rules.

Focus: host-timing keys (wall_ms, harness.*, jobs) must never gate a run or
appear in the diff output, while real metric regressions (cycles, speedup)
still fail. Run directly or via ctest (test name: bench_diff_unit).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
BENCH_DIFF = os.path.join(TOOLS_DIR, "bench_diff.py")


def report(hism_cycles, speedup, wall_ms, harness=None):
    doc = {
        "schema": "smtu-bench-v1",
        "bench": "unit",
        "suite": {"scale": 0.05, "seed": 1},
        "matrices": [
            {
                "name": "m0",
                "nnz": 100,
                "hism_cycles": hism_cycles,
                "crs_cycles": 5000,
                "speedup": speedup,
                "wall_ms": wall_ms,
            }
        ],
        "summary": {"count": 1, "avg_speedup": speedup},
    }
    if harness is not None:
        doc["harness"] = harness
    return doc


def run_diff(old, new, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w", encoding="utf-8") as handle:
            json.dump(old, handle)
        with open(new_path, "w", encoding="utf-8") as handle:
            json.dump(new, handle)
        result = subprocess.run(
            [sys.executable, BENCH_DIFF, old_path, new_path, *extra],
            capture_output=True,
            text=True,
            check=False,
        )
    return result.returncode, result.stdout + result.stderr


class BenchDiffGating(unittest.TestCase):
    def test_identical_reports_pass(self):
        doc = report(1000, 5.0, 20.0)
        code, out = run_diff(doc, doc)
        self.assertEqual(code, 0, out)
        self.assertNotIn("[REGRESS]", out)

    def test_wall_ms_blowup_does_not_gate(self):
        # 100x slower wall clock with identical simulated metrics: clean.
        old = report(1000, 5.0, wall_ms=10.0)
        new = report(1000, 5.0, wall_ms=1000.0)
        code, out = run_diff(old, new, "--all")
        self.assertEqual(code, 0, out)
        self.assertNotIn("wall_ms", out)

    def test_harness_keys_are_invisible(self):
        # Baseline without a harness section vs candidate with one: the new
        # keys must not even show up as [new].
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 12.0, harness={"jobs": 8, "wall_ms": 125.0})
        code, out = run_diff(old, new, "--all")
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("harness", out)
        self.assertNotIn("jobs", out)

    def test_host_section_is_invisible(self):
        # The host cache-counter section varies with process history (cold vs
        # warm --sim-cache runs); like harness it must never gate or diff.
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 12.0)
        new["host"] = {
            "program_cache": {"hits": 59, "misses": 3},
            "stage_cache": {"hits": 30, "misses": 30},
            "sim_cache": {"hits": 60, "misses": 0, "stores": 0},
        }
        code, out = run_diff(old, new, "--all")
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("host", out)
        self.assertNotIn("sim_cache", out)

    def test_per_sec_rates_are_invisible(self):
        # Interpreter-throughput rates (micro_host --interp-json) are host
        # speed, not simulated metrics: a 10x swing must neither gate nor
        # appear as schema drift, even outside a "host" section.
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        new["matrices"][0]["insts_per_sec"] = 19.4e6
        new["matrices"][0]["cycles_per_sec"] = 150e6
        code, out = run_diff(old, new, "--all")
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("per_sec", out)

    def test_hostmicro_dispatch_records_are_invisible(self):
        # The full smtu-hostmicro-v1 record shape: everything lives under
        # "host", and the per-record rates/wall times are timing fragments.
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        new["host"] = {
            "dispatch": [
                {"name": "hism_transpose", "mode": "threaded", "runs": 220,
                 "wall_ms": 201.0, "insts_per_sec": 1.9e7, "cycles_per_sec": 1.6e8},
                {"name": "hism_transpose", "mode": "switch", "runs": 60,
                 "wall_ms": 204.0, "insts_per_sec": 2.7e6, "cycles_per_sec": 2.2e7},
            ],
        }
        code, out = run_diff(old, new, "--all")
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("dispatch", out)

    def test_telemetry_section_is_invisible(self):
        # A telemetry-on report embeds a "telemetry" section absent from the
        # telemetry-off baseline; it must diff clean even at threshold 0.
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        new["telemetry"] = {
            "schema": "smtu-telemetry-v1",
            "counters": {"cache.program.hits_total": 59,
                         "pool.tasks_total": 220},
            "gauges": {"pool.queue_depth_peak": 4},
            "histograms": {
                "bench.item_wall_us": {"count": 60, "sum": 120000, "min": 90,
                                       "max": 9000, "p50": 1500, "p90": 4000,
                                       "p95": 6000, "p99": 9000,
                                       "buckets": [{"le": 2047, "n": 40},
                                                   {"le": 16383, "n": 20}]},
            },
        }
        code, out = run_diff(old, new, "--all", "--threshold=0")
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("telemetry", out)
        self.assertNotIn("hits_total", out)

    def test_telemetry_suffix_keys_are_invisible(self):
        # Defense in depth: stray telemetry leaves outside the "telemetry"
        # section are suffix-matched by unit (_us/_pct/_peak/_total) and
        # skipped wherever they appear.
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        new["matrices"][0]["stage.build_us"] = 431
        new["matrices"][0]["pool.worker_util_pct"] = 99
        new["matrices"][0]["pool.queue_depth_peak"] = 7
        new["matrices"][0]["cache.sim.bytes_total"] = 123456
        code, out = run_diff(old, new, "--all", "--threshold=0")
        self.assertEqual(code, 0, out)
        self.assertNotIn("[new]", out)
        self.assertNotIn("build_us", out)
        self.assertNotIn("util_pct", out)

    def test_simulated_bytes_keys_still_gate(self):
        # "_bytes" is deliberately NOT a skipped suffix: simulated memory
        # footprints (mem_contiguous_bytes, storage_bytes) are real metrics,
        # and one vanishing must still fail the run.
        old = report(1000, 5.0, 10.0)
        old["matrices"][0]["mem_contiguous_bytes"] = 4096
        old["matrices"][0]["storage_bytes"] = 8192
        new = report(1000, 5.0, 10.0)
        new["matrices"][0]["mem_contiguous_bytes"] = 4096
        code, out = run_diff(old, new)
        self.assertEqual(code, 1, out)
        self.assertIn("[gone]", out)
        self.assertIn("storage_bytes", out)

    def test_cycle_regression_still_fails(self):
        old = report(1000, 5.0, 10.0)
        new = report(1500, 5.0, 10.0)  # 50% more simulated cycles
        code, out = run_diff(old, new)
        self.assertEqual(code, 1, out)
        self.assertIn("[REGRESS]", out)
        self.assertIn("hism_cycles", out)

    def test_speedup_regression_still_fails(self):
        old = report(1000, 5.0, 10.0)
        new = report(1000, 3.0, 10.0)
        code, out = run_diff(old, new)
        self.assertEqual(code, 1, out)
        self.assertIn("[REGRESS]", out)

    def test_cycle_improvement_passes(self):
        old = report(1500, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        code, out = run_diff(old, new)
        self.assertEqual(code, 0, out)
        self.assertIn("[better]", out)

    def test_gone_metric_fails(self):
        # A counter that vanishes from NEW could hide a regression: gate it.
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        del new["matrices"][0]["crs_cycles"]
        code, out = run_diff(old, new)
        self.assertEqual(code, 1, out)
        self.assertIn("[gone]", out)
        self.assertIn("vanished", out)

    def test_new_metric_fails_without_allow_new(self):
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        new["matrices"][0]["profile_cycles"] = 1000
        code, out = run_diff(old, new)
        self.assertEqual(code, 1, out)
        self.assertIn("[new]", out)
        self.assertIn("--allow-new", out)

    def test_new_metric_passes_with_allow_new(self):
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        new["matrices"][0]["profile_cycles"] = 1000
        code, out = run_diff(old, new, "--allow-new")
        self.assertEqual(code, 0, out)
        self.assertIn("[new]", out)  # still reported, just not gating

    def test_allow_new_does_not_cover_gone(self):
        old = report(1000, 5.0, 10.0)
        new = report(1000, 5.0, 10.0)
        del new["matrices"][0]["crs_cycles"]
        code, out = run_diff(old, new, "--allow-new")
        self.assertEqual(code, 1, out)
        self.assertIn("[gone]", out)


def serve_report(total_p99_vus=179, shed=0, req_per_sec=19414.0, wall_us=30905.0):
    """A minimal smtu-serve-v1 shape (docs/SERVING.md)."""
    return {
        "schema": "smtu-serve-v1",
        "trace": {"seed": 25252749037, "set": "locality", "scale": 0.05,
                  "requests": 600},
        "options": {"queue_depth": 64, "virtual_workers": 4,
                    "cycles_per_us": 1000, "replay_vus": 20},
        "virtual": {
            "admitted_requests": 600,
            "shed_requests": shed,
            "coalesced_requests": 68,
            "warm_requests": 497,
            "simulated_requests": 35,
            "distinct_sims": 35,
            "max_queue_depth": 3,
            "sim_cycles": 2053716,
            "offered_cycles": 19633941,
            "makespan_vus": 10545,
            "total_p50_vus": 20,
            "total_p99_vus": total_p99_vus,
        },
        "host": {"jobs": 1, "simulations": 35, "wall_us": wall_us,
                 "req_per_sec": req_per_sec, "sim_wall_us": wall_us * 0.9},
    }


class ServeReportGating(unittest.TestCase):
    def test_identical_serve_reports_diff_clean_at_zero(self):
        doc = serve_report()
        code, out = run_diff(doc, doc, "--threshold=0")
        self.assertEqual(code, 0, out)

    def test_wall_clock_serve_fragments_never_gate(self):
        # 10x slower host (req_per_sec, wall_us, sim_wall_us) with identical
        # virtual-time metrics: clean even at threshold 0, and the host keys
        # must not appear in the output at all.
        old = serve_report(req_per_sec=19414.0, wall_us=30905.0)
        new = serve_report(req_per_sec=1941.0, wall_us=309050.0)
        code, out = run_diff(old, new, "--all", "--threshold=0")
        self.assertEqual(code, 0, out)
        self.assertNotIn("req_per_sec", out)
        self.assertNotIn("wall_us", out)

    def test_virtual_latency_regression_gates(self):
        # "_vus" leaves are deterministic virtual-time latencies: lower is
        # better, and a tail blowup past the threshold must fail.
        old = serve_report(total_p99_vus=179)
        new = serve_report(total_p99_vus=400)
        code, out = run_diff(old, new, "--threshold=0.10")
        self.assertEqual(code, 1, out)
        self.assertIn("[REGRESS]", out)
        self.assertIn("total_p99_vus", out)

    def test_virtual_latency_improvement_passes(self):
        old = serve_report(total_p99_vus=400)
        new = serve_report(total_p99_vus=179)
        code, out = run_diff(old, new, "--threshold=0.10")
        self.assertEqual(code, 0, out)
        self.assertIn("[better]", out)

    def test_deterministic_counter_drift_gates_exactly(self):
        # shed_requests is a pure function of (trace, options): even a
        # one-request drift inside the relative threshold must fail.
        old = serve_report(shed=0)
        new = serve_report(shed=1)
        code, out = run_diff(old, new, "--threshold=0.10")
        self.assertEqual(code, 1, out)
        self.assertIn("[REGRESS]", out)
        self.assertIn("shed_requests", out)
        self.assertIn("exactly", out)

    def test_virtual_krps_regression_gates(self):
        # The sweep report's virtual throughput is higher-is-better.
        old = {"schema": "smtu-serve-sweep-v1",
               "open_loop": [{"rate_rps": 20000.0, "virtual_krps": 22.1,
                              "total_p99_vus": 179}]}
        new = {"schema": "smtu-serve-sweep-v1",
               "open_loop": [{"rate_rps": 20000.0, "virtual_krps": 11.0,
                              "total_p99_vus": 179}]}
        code, out = run_diff(old, new, "--threshold=0.10")
        self.assertEqual(code, 1, out)
        self.assertIn("[REGRESS]", out)
        self.assertIn("virtual_krps", out)


if __name__ == "__main__":
    unittest.main()
