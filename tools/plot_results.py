#!/usr/bin/env python3
"""Plot smtu benchmark results exported with --json.

Usage:
    # 1. export the data
    build/bench/fig10_buffer_utilization --json=out/fig10.json
    build/bench/fig11_locality           --json=out/fig11.json
    build/bench/fig12_nonzeros_per_row   --json=out/fig12.json
    build/bench/fig13_size               --json=out/fig13.json

    # 2. render PNGs next to the JSON files
    tools/plot_results.py out/fig10.json out/fig11.json out/fig12.json out/fig13.json

The figure type is inferred from the columns: the Fig. 10 grid (B + L=...
columns) becomes a line chart of utilization vs B; the per-matrix tables
(fig 11/12/13, summary) become the paper's bar-plus-line layout — HiSM and
CRS cycles/nnz as bars on a log axis, speedup as a line on a second axis.

Requires matplotlib; prints a friendly message if it is unavailable.
"""

import json
import pathlib
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover - environment dependent
    sys.stderr.write("matplotlib is not installed; pip install matplotlib to plot\n")
    sys.exit(1)


def plot_fig10(rows, out_path):
    fig, ax = plt.subplots(figsize=(6, 4))
    bandwidths = [row["B"] for row in rows]
    line_columns = [key for key in rows[0] if key.startswith("L=")]
    for column in line_columns:
        ax.plot(bandwidths, [row[column] for row in rows], marker="o", label=column)
    ax.set_xlabel("buffer bandwidth B")
    ax.set_ylabel("buffer utilization BU")
    ax.set_xscale("log", base=2)
    ax.set_ylim(0, 1.05)
    ax.grid(True, alpha=0.3)
    ax.legend(title="accessible lines")
    ax.set_title("Fig. 10 — STM buffer bandwidth utilization")
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def plot_matrix_table(rows, out_path, title):
    names = [row["matrix"] for row in rows]
    hism = [row["HiSM cyc/nnz"] for row in rows]
    crs = [row["CRS cyc/nnz"] for row in rows]
    speedup = [row["speedup"] for row in rows]

    fig, ax = plt.subplots(figsize=(9, 4.5))
    x = range(len(names))
    width = 0.35
    ax.bar([i - width / 2 for i in x], hism, width, label="HiSM cycles/nnz")
    ax.bar([i + width / 2 for i in x], crs, width, label="CRS cycles/nnz")
    ax.set_yscale("log")
    ax.set_ylabel("cycles per non-zero (log)")
    ax.set_xticks(list(x))
    ax.set_xticklabels(names, rotation=45, ha="right", fontsize=8)
    ax.grid(True, axis="y", alpha=0.3)

    twin = ax.twinx()
    twin.plot(list(x), speedup, color="black", marker="d", label="speedup")
    twin.set_ylabel("HiSM speedup over CRS")
    twin.set_ylim(bottom=0)

    handles_a, labels_a = ax.get_legend_handles_labels()
    handles_b, labels_b = twin.get_legend_handles_labels()
    ax.legend(handles_a + handles_b, labels_a + labels_b, loc="upper right")
    ax.set_title(title)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def main(paths):
    if not paths:
        sys.stderr.write(__doc__)
        return 2
    for raw in paths:
        path = pathlib.Path(raw)
        rows = json.loads(path.read_text())
        if not rows:
            print(f"{path}: empty, skipped")
            continue
        out_path = path.with_suffix(".png")
        if "B" in rows[0]:
            plot_fig10(rows, out_path)
        elif "HiSM cyc/nnz" in rows[0]:
            plot_matrix_table(rows, out_path, path.stem)
        else:
            print(f"{path}: unrecognized table shape, skipped")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
