#!/usr/bin/env python3
"""Unit tests for tools/prof_report.py.

Feeds synthetic smtu-profile-v1 documents (bare and embedded in a bench
report) through the show/diff subcommands and checks table contents and
exit codes. Run directly or via ctest (test name: prof_report_unit).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
PROF_REPORT = os.path.join(TOOLS_DIR, "prof_report.py")


def profile(cycles=100, histogram_cycles=60):
    remainder = cycles - histogram_cycles - 10
    return {
        "schema": "smtu-profile-v1",
        "cycles": cycles,
        "runs": 1,
        "buckets": {
            "busy_scalar": remainder,
            "busy_vmem_indexed": histogram_cycles,
            "stall_raw_hazard": 10,
        },
        "fu": {
            "scalar": {"instructions": 5, "occupancy_cycles": remainder,
                       "idle_cycles": cycles - remainder,
                       "occupancy": remainder / cycles},
            "vmem_indexed": {"instructions": 2,
                             "occupancy_cycles": histogram_cycles,
                             "idle_cycles": cycles - histogram_cycles,
                             "occupancy": histogram_cycles / cycles},
        },
        "opcodes": {"v_ldx": {"issued": 2, "retired": 2, "elements": 128,
                              "busy_cycles": histogram_cycles,
                              "stall_cycles": 0}},
        "regions": [{"name": "histogram", "issued": 2,
                     "busy_cycles": histogram_cycles, "stall_cycles": 0}],
        "lines": [
            {"line": 7, "text": "v_ldx vr1, r2, vr0", "region": "histogram",
             "issued": 2, "busy_cycles": histogram_cycles, "stall_cycles": 0,
             "stalls": {}},
            {"line": 3, "text": "addi r1, r1, 1", "region": "",
             "issued": 5, "busy_cycles": remainder, "stall_cycles": 10,
             "stalls": {"raw_hazard": 10}},
        ],
    }


def bench_report(prof):
    return {
        "schema": "smtu-bench-v1",
        "bench": "unit",
        "matrices": [
            {"name": "m0", "nnz": 10, "hism_cycles": 1, "crs_cycles": 2,
             "profile": {"hism": prof, "crs": prof}},
        ],
    }


def scaling_report():
    def point(cores, cycles):
        per_core = []
        for core in range(cores):
            per_core.append({
                "core": core, "cycles": cycles,
                "busy": {"scalar": cycles - 40, "vmem_stream": 10},
                "stalls": {"raw_hazard": 5, "barrier_wait": 20,
                           "mem_bank_contention": 5 if cores > 1 else 0,
                           "stm_busy": 5 if cores > 1 else 10},
            })
        return {"cores": cores, "cycles": cycles, "speedup": 200 / cycles,
                "barriers": 2,
                "memory": {"requests": 8, "contended_requests": cores - 1,
                           "contention_cycles": 5 * (cores - 1)},
                "per_core": per_core}
    kernels = {"hism_sharded": [point(1, 200), point(2, 110)],
               "crs_parallel": [point(1, 300), point(2, 160)]}
    return {
        "schema": "smtu-scaling-v1",
        "bench": "ext_multicore_scaling",
        "matrices": [{"name": "m0", "set": "locality", "nnz": 10,
                      "kernels": kernels}],
        "summary": {},
    }


def hostmicro_report():
    """What bench/micro_host --interp-json writes: per (kernel class,
    dispatch mode) host-throughput records under host.dispatch."""
    def record(name, mode, insts_per_sec, cycles_per_sec):
        return {"name": name, "mode": mode, "runs": 100, "wall_ms": 205.0,
                "insts_per_sec": insts_per_sec,
                "cycles_per_sec": cycles_per_sec}
    return {
        "schema": "smtu-hostmicro-v1",
        "host": {"dispatch": [
            record("hism_transpose", "threaded", 20.0e6, 160.0e6),
            record("hism_transpose", "switch", 5.0e6, 40.0e6),
            record("sell_spmv", "threaded", 12.0e6, 90.0e6),
        ]},
    }


def telemetry_doc():
    """What --telemetry-json writes: an smtu-telemetry-v1 document with the
    three metric families (docs/TELEMETRY.md)."""
    return {
        "schema": "smtu-telemetry-v1",
        "counters": {
            "cache.program.hits_total": 59,
            "cache.program.misses_total": 3,
            "cache.stage.hits_total": 30,
            "cache.stage.misses_total": 30,
            "pool.tasks_total": 220,
        },
        "gauges": {"pool.queue_depth_peak": 4},
        "histograms": {
            "bench.item_wall_us": {
                "count": 60, "sum": 120000, "min": 90, "max": 9000,
                "p50": 1500, "p90": 4000, "p95": 6000, "p99": 9000,
                "buckets": [{"le": 2047, "n": 40}, {"le": 16383, "n": 20}],
            },
        },
    }


def run_show_with_telemetry(doc):
    """Run `show --telemetry=DOC.json` on a synthetic document."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "telemetry.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        result = subprocess.run(
            [sys.executable, PROF_REPORT, "show", f"--telemetry={path}"],
            capture_output=True, text=True, check=False)
    return result.returncode, result.stdout + result.stderr


def run_show_with_serve(doc):
    """Run `show --serve=DOC.json` on a synthetic document."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "serve.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        result = subprocess.run(
            [sys.executable, PROF_REPORT, "show", f"--serve={path}"],
            capture_output=True, text=True, check=False)
    return result.returncode, result.stdout + result.stderr


def serve_doc():
    """What smtu_serve --json writes: an smtu-serve-v1 report
    (docs/SERVING.md) with its virtual/host sections."""
    virtual = {
        "admitted_requests": 590, "shed_requests": 10,
        "coalesced_requests": 68, "warm_requests": 487,
        "simulated_requests": 35, "distinct_sims": 35,
        "max_queue_depth": 64, "sim_cycles": 2000000,
        "offered_cycles": 19000000, "first_arrival_vus": 9,
        "makespan_vus": 10545,
    }
    for metric in ("queue", "service", "total"):
        for point, value in (("min", 0), ("p50", 20), ("p90", 30),
                             ("p95", 146), ("p99", 179), ("max", 187)):
            virtual[f"{metric}_{point}_vus"] = value
        virtual[f"{metric}_mean_vus"] = 22.6
    return {
        "schema": "smtu-serve-v1",
        "trace": {"seed": 1, "set": "locality", "scale": 0.05,
                  "requests": 600, "arrival_mode": "poisson",
                  "zipf_skew": 1.0, "rate_rps": 60000.0},
        "options": {"queue_depth": 64, "virtual_workers": 4,
                    "cycles_per_us": 1000, "replay_vus": 20},
        "virtual": virtual,
        "host": {"jobs": 1, "simulations": 35, "wall_us": 30905.0,
                 "req_per_sec": 19414.0, "sim_wall_us": 28000.0},
    }


def run_show_with_host(host_doc, profile_doc=None, flags=()):
    """Run `show [PROFILE] --host=HOST.json` on synthetic documents."""
    with tempfile.TemporaryDirectory() as tmp:
        host_path = os.path.join(tmp, "host.json")
        with open(host_path, "w", encoding="utf-8") as handle:
            json.dump(host_doc, handle)
        argv = [sys.executable, PROF_REPORT, "show"]
        if profile_doc is not None:
            profile_path = os.path.join(tmp, "profile.json")
            with open(profile_path, "w", encoding="utf-8") as handle:
                json.dump(profile_doc, handle)
            argv.append(profile_path)
        argv.append(f"--host={host_path}")
        argv.extend(flags)
        result = subprocess.run(argv, capture_output=True, text=True,
                                check=False)
    return result.returncode, result.stdout + result.stderr


def run_tool_with_flags(command, docs, flags):
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for index, doc in enumerate(docs):
            path = os.path.join(tmp, f"doc{index}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            paths.append(path)
        result = subprocess.run(
            [sys.executable, PROF_REPORT, command, *paths, *flags],
            capture_output=True, text=True, check=False)
    return result.returncode, result.stdout + result.stderr


class ProfReportShow(unittest.TestCase):
    def test_bare_profile_tables(self):
        code, out = run_tool_with_flags("show", [profile()], [])
        self.assertEqual(code, 0, out)
        self.assertIn("100 cycles", out)
        self.assertIn("busy_vmem_indexed", out)
        self.assertIn("histogram", out)
        # hottest line first: the indexed load dominates
        self.assertLess(out.index("v_ldx"), out.index("addi"), out)

    def test_zero_buckets_hidden(self):
        code, out = run_tool_with_flags("show", [profile()], [])
        self.assertEqual(code, 0, out)
        self.assertNotIn("stall_stm_busy", out)

    def test_conservation_warning(self):
        broken = profile()
        broken["buckets"]["busy_scalar"] += 1
        code, out = run_tool_with_flags("show", [broken], [])
        self.assertEqual(code, 0, out)
        self.assertIn("WARNING", out)

    def test_bench_report_selects_kernel(self):
        doc = bench_report(profile())
        code, out = run_tool_with_flags("show", [doc], ["--kernel=crs"])
        self.assertEqual(code, 0, out)
        self.assertIn("m0/crs", out)
        self.assertNotIn("m0/hism", out)

    def test_bench_report_without_profile_fails(self):
        doc = bench_report(profile())
        del doc["matrices"][0]["profile"]
        code, out = run_tool_with_flags("show", [doc], [])
        self.assertEqual(code, 2, out)
        self.assertIn("--profile", out)

    def test_top_limits_lines(self):
        code, out = run_tool_with_flags("show", [profile()], ["--top=1"])
        self.assertEqual(code, 0, out)
        self.assertIn("v_ldx", out)
        self.assertNotIn("addi", out)


class ProfReportScaling(unittest.TestCase):
    def test_rollup_sums_buckets_across_cores(self):
        code, out = run_tool_with_flags("show", [scaling_report()],
                                        ["--kernel=hism_sharded"])
        self.assertEqual(code, 0, out)
        self.assertIn("m0/hism_sharded N=1", out)
        self.assertIn("m0/hism_sharded N=2", out)
        self.assertNotIn("crs_parallel", out)
        # N=2: two cores x 20 barrier-wait cycles summed in the rollup.
        self.assertIn("stall_barrier_wait", out)
        self.assertIn("40", out)
        # no per-core table without the flag
        self.assertNotIn("top stall", out)

    def test_per_core_table(self):
        code, out = run_tool_with_flags(
            "show", [scaling_report()],
            ["--per-core", "--kernel=crs_parallel", "--matrix=m0"])
        self.assertEqual(code, 0, out)
        self.assertIn("top stall", out)
        self.assertIn("barrier_wait", out)
        self.assertIn("bank-contention", out)

    def test_unknown_kernel_fails(self):
        code, out = run_tool_with_flags("show", [scaling_report()],
                                        ["--kernel=nope"])
        self.assertEqual(code, 2, out)
        self.assertIn("scaling record", out)


class ProfReportHost(unittest.TestCase):
    def test_host_alone_renders_throughput_and_speedup(self):
        # The CI invocation: `show --host host_interp.json`, no profile.
        code, out = run_show_with_host(hostmicro_report())
        self.assertEqual(code, 0, out)
        self.assertIn("host interpreter throughput", out)
        self.assertIn("hism_transpose", out)
        self.assertIn("threaded", out)
        self.assertIn("switch", out)
        # 20 Minsts/s threaded vs 5 Minsts/s switch.
        self.assertIn("20.00M", out)
        self.assertIn("4.00x", out)
        # sell_spmv has no switch record: listed, but no speedup row.
        self.assertIn("sell_spmv", out)
        self.assertIn("12.00M", out)

    def test_host_prints_after_simulated_rollups(self):
        code, out = run_show_with_host(hostmicro_report(),
                                       profile_doc=profile())
        self.assertEqual(code, 0, out)
        self.assertIn("100 cycles", out)
        self.assertIn("insts/s", out)
        # Simulated-cycle rollups first, host throughput after.
        self.assertLess(out.index("100 cycles"),
                        out.index("host interpreter throughput"), out)

    def test_wrong_schema_under_host_fails(self):
        # A bare profile handed to --host is a usage error, not a silent
        # empty table.
        code, out = run_show_with_host(profile())
        self.assertEqual(code, 2, out)
        self.assertIn("smtu-hostmicro-v1", out)
        self.assertNotIn("Traceback", out)
        self.assertEqual(len(out.strip().splitlines()), 1, out)

    def test_hostmicro_without_records_fails_cleanly(self):
        # Right schema but no host.dispatch list (e.g. a truncated artifact):
        # same one-line usage error, never a stack trace.
        doc = {"schema": "smtu-hostmicro-v1", "host": {}}
        code, out = run_show_with_host(doc)
        self.assertEqual(code, 2, out)
        self.assertNotIn("Traceback", out)
        self.assertEqual(len(out.strip().splitlines()), 1, out)

    def test_show_without_any_input_fails(self):
        result = subprocess.run([sys.executable, PROF_REPORT, "show"],
                                capture_output=True, text=True, check=False)
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("--host", result.stderr)


class ProfReportTelemetry(unittest.TestCase):
    def test_standalone_document_renders_all_tables(self):
        code, out = run_show_with_telemetry(telemetry_doc())
        self.assertEqual(code, 0, out)
        self.assertIn("host telemetry", out)
        # counter + gauge rows (gauges tagged as peaks)
        self.assertIn("pool.tasks_total", out)
        self.assertIn("220", out)
        self.assertIn("4 (peak)", out)
        # histogram row: count, percentiles, mean = 120000/60
        self.assertIn("bench.item_wall_us", out)
        self.assertIn("1500", out)
        self.assertIn("2000.0", out)
        # cache hit-rate rollup: 59/(59+3) and 30/(30+30)
        self.assertIn("cache hit rates:", out)
        self.assertIn("95.2%", out)
        self.assertIn("50.0%", out)

    def test_embedded_telemetry_section_renders(self):
        # A bench/repro report produced with --telemetry carries the same
        # object under its "telemetry" key.
        doc = bench_report(profile())
        doc["telemetry"] = telemetry_doc()
        code, out = run_show_with_telemetry(doc)
        self.assertEqual(code, 0, out)
        self.assertIn("cache hit rates:", out)
        self.assertIn("95.2%", out)

    def test_missing_telemetry_fails_with_one_line(self):
        # A report without a telemetry section is a usage error: one clear
        # line on stderr and exit 2, not a stack trace.
        doc = bench_report(profile())
        code, out = run_show_with_telemetry(doc)
        self.assertEqual(code, 2, out)
        self.assertIn("smtu-telemetry-v1", out)
        self.assertNotIn("Traceback", out)
        self.assertEqual(len(out.strip().splitlines()), 1, out)

    def test_empty_histogram_renders_dash_mean(self):
        doc = telemetry_doc()
        doc["histograms"]["vsim.run_us"] = {
            "count": 0, "sum": 0, "min": 0, "max": 0,
            "p50": 0, "p90": 0, "p95": 0, "p99": 0, "buckets": [],
        }
        code, out = run_show_with_telemetry(doc)
        self.assertEqual(code, 0, out)
        self.assertIn("vsim.run_us", out)


class ProfReportServe(unittest.TestCase):
    def test_serve_report_renders_all_tables(self):
        code, out = run_show_with_serve(serve_doc())
        self.assertEqual(code, 0, out)
        # latency percentile table: the three metrics with their p99s
        self.assertIn("virtual-time latency", out)
        self.assertIn("queue", out)
        self.assertIn("service", out)
        self.assertIn("179", out)
        # outcome rollup with shares over admitted + shed
        self.assertIn("warm (result cache)", out)
        self.assertIn("81.2%", out)  # 487/600
        self.assertIn("shed (queue full)", out)
        # dedup rollup: 19000000 / 2000000
        self.assertIn("9.50x", out)
        # host line is labeled as never gated
        self.assertIn("never gated", out)
        self.assertIn("19414", out)

    def test_shed_count_visible(self):
        doc = serve_doc()
        doc["virtual"]["shed_requests"] = 128
        doc["virtual"]["admitted_requests"] = 472
        code, out = run_show_with_serve(doc)
        self.assertEqual(code, 0, out)
        self.assertIn("128", out)
        self.assertIn("21.3%", out)  # 128/600 shed share

    def test_missing_serve_section_fails_with_one_line(self):
        # A non-serve document is a usage error: one clear line on stderr
        # and exit 2, not a stack trace.
        doc = bench_report(profile())
        code, out = run_show_with_serve(doc)
        self.assertEqual(code, 2, out)
        self.assertIn("smtu-serve-v1", out)
        self.assertNotIn("Traceback", out)
        self.assertEqual(len(out.strip().splitlines()), 1, out)

    def test_serve_without_host_section_renders(self):
        # The host section is optional (a purely virtual replay): the
        # virtual tables must still render.
        doc = serve_doc()
        del doc["host"]
        code, out = run_show_with_serve(doc)
        self.assertEqual(code, 0, out)
        self.assertIn("virtual-time latency", out)
        self.assertNotIn("never gated", out)


class ProfReportDiff(unittest.TestCase):
    def test_identical_profiles(self):
        code, out = run_tool_with_flags("diff", [profile(), profile()], [])
        self.assertEqual(code, 0, out)
        self.assertIn("identical", out)

    def test_moved_cycles_reported(self):
        code, out = run_tool_with_flags(
            "diff", [profile(histogram_cycles=60), profile(histogram_cycles=40)],
            [])
        self.assertEqual(code, 0, out)
        self.assertIn("busy_vmem_indexed", out)
        self.assertIn("-20", out)
        self.assertIn("region histogram", out)
        self.assertIn("line movers", out)

    def test_missing_profile_in_new_fails(self):
        doc = bench_report(profile())
        solo = {"schema": "smtu-bench-v1", "matrices": [
            {"name": "m0", "profile": {"hism": profile()}}]}
        code, out = run_tool_with_flags("diff", [doc, solo], [])
        self.assertEqual(code, 2, out)
        self.assertIn("missing", out)


if __name__ == "__main__":
    unittest.main()
