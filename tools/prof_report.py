#!/usr/bin/env python3
"""Render and diff smtu-profile-v1 cycle-attribution profiles as text tables.

Usage:
    tools/prof_report.py show [PROFILE.json] [--top=10] [--matrix=NAME]
                         [--kernel=hism|crs] [--per-core]
                         [--host=INTERP.json] [--telemetry=TELEMETRY.json]
                         [--serve=SERVE.json]
    tools/prof_report.py diff OLD.json NEW.json [--top=10] [--matrix=NAME]
                         [--kernel=hism|crs]

Accepts either a bare smtu-profile-v1 document (what ``vsim_run
--profile-json`` writes) or an smtu-bench-v1 / smtu-repro-v1 report produced
with ``--profile``, in which case --matrix selects the record (default: the
first profiled one) and --kernel the side (default: both).

``show`` also reads smtu-scaling-v1 reports (bench/ext_multicore_scaling
--json): per (matrix, kernel, core count) it rolls the per-core busy/stall
buckets up across cores, and ``--per-core`` adds a one-row-per-core table
(cycles, busy/stall split, dominant stall) — the multi-core stall taxonomy
of docs/MULTICORE.md. There --kernel selects hism_sharded or crs_parallel.

``show`` prints, per profile: the cycle-attribution breakdown (every busy and
stall bucket with its share of total cycles — the buckets sum to the total
exactly, see docs/PROFILING.md), functional-unit occupancy, per-region
roll-ups, and the top-N hottest source lines.

``--host=INTERP.json`` appends the host interpreter-throughput records of an
smtu-hostmicro-v1 document (``bench/micro_host --interp-json``): per kernel
class and dispatch mode, instructions/sec and simulated-cycles/sec of wall
time, plus the threaded-over-switch speedup per kernel. These are host-machine
speeds, not simulated metrics — bench_diff.py never gates on them. With a
PROFILE.json too, the records print after the simulated-cycle rollups; with
``--host`` alone (the CI invocation) only the throughput tables print.

``--telemetry=TELEMETRY.json`` renders host telemetry (docs/TELEMETRY.md):
counters/gauges, one table row per latency histogram (count, min, p50/p90/
p95/p99, max, mean), and a cache hit-rate rollup derived from the
``cache.<name>.{hits,misses}_total`` counters. Accepts a standalone
smtu-telemetry-v1 document (``--telemetry-json`` on any bench binary or
vsim_run) or a bench/repro report produced with ``--telemetry`` (the
embedded "telemetry" section). Host-side metrics — bench_diff.py never
gates on them.

``--serve=SERVE.json`` renders an smtu-serve-v1 report (``smtu_serve
--json``, docs/SERVING.md): the deterministic virtual-time latency
percentile table (queue/service/total), the request-outcome and dedup
rollups (coalesced / warm / shed shares, cycle dedup factor), and the host
wall-clock summary. The virtual metrics are gated by bench_diff.py; the
host line is wall clock and never gated.

``diff`` compares two profiles of the same program bucket by bucket, region
by region, and line by line, printing the largest movers first — the tool for
answering "where did the cycles go" between two kernel revisions.

Exit status: 0 on success, 2 on usage errors or unreadable input.
"""

import argparse
import json
import sys

SCHEMA = "smtu-profile-v1"


def fail(message):
    print(f"prof_report: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot read {path}: {error}")


def iter_matrix_records(document):
    """Yield every per-matrix record of a bench/repro report, in order."""
    for record in document.get("matrices", []):
        yield record
    for figure in document.get("figures", []):
        for record in figure.get("matrices", []):
            yield record


def extract_profiles(document, matrix, kernel):
    """Return [(label, profile), ...] from any supported document shape."""
    if document.get("schema") == SCHEMA:
        return [("", document)]
    found = []
    for record in iter_matrix_records(document):
        profile = record.get("profile")
        if not profile:
            continue
        name = record.get("name", "?")
        if matrix is not None and name != matrix:
            continue
        for side in ("hism", "crs"):
            if kernel is not None and side != kernel:
                continue
            if side in profile:
                found.append((f"{name}/{side}", profile[side]))
        if matrix is None:
            break  # default: first profiled record only
    if not found:
        fail("no matching profile section (was the report made with --profile, "
             "and do --matrix/--kernel match?)")
    return found


def print_table(header, rows):
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        print("  " + "  ".join(cell.ljust(width)
                               for cell, width in zip(cells, widths)).rstrip())
    line(header)
    line(["-" * width for width in widths])
    for row in rows:
        line(row)
    print()


def percent(part, total):
    return f"{100.0 * part / total:.1f}%" if total else "0.0%"


def show_profile(label, profile, top):
    title = f"profile {label}".strip()
    cycles = profile["cycles"]
    print(f"== {title}: {cycles} cycles over {profile['runs']} run(s) ==\n")

    buckets = profile["buckets"]
    attributed = sum(buckets.values())
    rows = [[name, str(value), percent(value, cycles)]
            for name, value in buckets.items() if value]
    print_table(["bucket", "cycles", "share"], rows)
    if attributed != cycles:
        print(f"  WARNING: buckets sum to {attributed}, not {cycles}\n")

    rows = [[name, str(fu["instructions"]), str(fu["occupancy_cycles"]),
             str(fu["idle_cycles"]), f"{fu['occupancy']:.3f}"]
            for name, fu in profile["fu"].items()]
    print_table(["unit", "instructions", "occupied", "idle", "occupancy"], rows)

    regions = profile.get("regions", [])
    if regions:
        rows = [[region["name"], str(region["issued"]),
                 str(region["busy_cycles"]), str(region["stall_cycles"]),
                 percent(region["busy_cycles"] + region["stall_cycles"], cycles)]
                for region in regions]
        print_table(["region", "issued", "busy", "stall", "share"], rows)

    lines = sorted(profile.get("lines", []),
                   key=lambda entry: -(entry["busy_cycles"] + entry["stall_cycles"]))
    rows = []
    for entry in lines[:top]:
        total = entry["busy_cycles"] + entry["stall_cycles"]
        rows.append([f"L{entry['line']}", str(total), percent(total, cycles),
                     str(entry["busy_cycles"]), str(entry["stall_cycles"]),
                     entry.get("region", ""), entry["text"]])
    if rows:
        print(f"  top {min(top, len(lines))} source lines by attributed cycles:")
        print_table(["line", "cycles", "share", "busy", "stall", "region", "text"],
                    rows)


def show_scaling(document, matrix, kernel, per_core, top):
    """Per-core rollups of an smtu-scaling-v1 report (one block per
    (matrix, kernel, core count) scale point)."""
    shown = False
    for record in document.get("matrices", []):
        name = record.get("name", "?")
        if matrix is not None and name != matrix:
            continue
        for kernel_name, points in record.get("kernels", {}).items():
            if kernel is not None and kernel_name != kernel:
                continue
            for point in points:
                memory = point.get("memory", {})
                print(f"== {name}/{kernel_name} N={point['cores']}: "
                      f"{point['cycles']} cycles, {point['barriers']} barrier(s), "
                      f"{memory.get('contention_cycles', 0)} bank-contention "
                      f"cycle(s) ==\n")
                cores = point.get("per_core", [])
                if per_core:
                    rows = []
                    for core in cores:
                        busy = sum(core["busy"].values())
                        stall = sum(core["stalls"].values())
                        worst = max(core["stalls"].items(),
                                    key=lambda bucket: bucket[1],
                                    default=("-", 0))
                        rows.append([str(core["core"]), str(core["cycles"]),
                                     str(busy), str(stall),
                                     percent(stall, core["cycles"]),
                                     worst[0] if worst[1] else "-"])
                    print_table(["core", "cycles", "busy", "stall", "stall%",
                                 "top stall"], rows)
                totals = {}
                for core in cores:
                    for prefix, buckets in (("busy_", core["busy"]),
                                            ("stall_", core["stalls"])):
                        for bucket, value in buckets.items():
                            key = prefix + bucket
                            totals[key] = totals.get(key, 0) + value
                attributed = sum(totals.values())
                rows = [[bucket, str(value), percent(value, attributed)]
                        for bucket, value in sorted(totals.items(),
                                                    key=lambda item: -item[1])
                        if value][:top]
                print_table(["bucket (all cores)", "cycles", "share"], rows)
                shown = True
        if matrix is None and shown:
            break  # default: first record only
    if not shown:
        fail("no matching scaling record (check --matrix/--kernel)")


def show_host(document):
    """Render the dispatch-throughput records of an smtu-hostmicro-v1
    document (bench/micro_host --interp-json). Host speed, not simulated
    cycles: one row per (kernel class, dispatch mode), then the
    threaded-over-switch speedup per kernel class."""
    records = None
    if isinstance(document, dict) and document.get("schema") == "smtu-hostmicro-v1":
        host = document.get("host")
        if isinstance(host, dict) and isinstance(host.get("dispatch"), list):
            records = host["dispatch"]
    if not records:
        fail("no host.dispatch records (expected bench/micro_host "
             "--interp-json output, schema smtu-hostmicro-v1)")

    def rate(value):
        return f"{value / 1e6:.2f}M"

    print("== host interpreter throughput (micro_host --interp-json; "
          "host speed, not simulated metrics) ==\n")
    rows = []
    by_kernel = {}
    for record in records:
        rows.append([record["name"], record["mode"],
                     rate(record["insts_per_sec"]),
                     rate(record["cycles_per_sec"]),
                     str(record["runs"]), f"{record['wall_ms']:.0f}"])
        by_kernel.setdefault(record["name"], {})[record["mode"]] = record
    print_table(["kernel", "dispatch", "insts/s", "sim-cycles/s", "runs",
                 "wall ms"], rows)

    rows = []
    for name, modes in by_kernel.items():
        threaded = modes.get("threaded")
        switch = modes.get("switch")
        if threaded and switch and switch["insts_per_sec"]:
            ratio = threaded["insts_per_sec"] / switch["insts_per_sec"]
            rows.append([name, f"{ratio:.2f}x"])
    if rows:
        print("  threaded-dispatch speedup over the legacy switch "
              "(HACKING.md \"Interpreter internals\"):")
        print_table(["kernel", "threaded/switch"], rows)


def extract_telemetry(document):
    """The smtu-telemetry-v1 object of a standalone document or a bench/repro
    report's embedded "telemetry" section; one-line failure otherwise."""
    telemetry = None
    if isinstance(document, dict):
        if document.get("schema") == "smtu-telemetry-v1":
            telemetry = document
        elif isinstance(document.get("telemetry"), dict) and \
                document["telemetry"].get("schema") == "smtu-telemetry-v1":
            telemetry = document["telemetry"]
    if telemetry is None:
        fail("no telemetry section (expected an smtu-telemetry-v1 document "
             "or a report produced with --telemetry)")
    return telemetry


def show_telemetry(document):
    """Render host telemetry (docs/TELEMETRY.md): counters/gauges, latency
    histograms, and the cache hit-rate rollup. Host-side metrics, never
    gated by bench_diff."""
    telemetry = extract_telemetry(document)
    counters = telemetry.get("counters", {})
    gauges = telemetry.get("gauges", {})
    histograms = telemetry.get("histograms", {})
    print("== host telemetry (docs/TELEMETRY.md; host-side metrics, "
          "never gated) ==\n")

    rows = [[name, str(value)] for name, value in counters.items()]
    rows += [[name, f"{value} (peak)"] for name, value in gauges.items()]
    if rows:
        print_table(["metric", "value"], rows)

    rows = []
    for name, hist in histograms.items():
        count = hist.get("count", 0)
        mean = f"{hist['sum'] / count:.1f}" if count else "-"
        rows.append([name, str(count), str(hist.get("min", 0)),
                     str(hist.get("p50", 0)), str(hist.get("p90", 0)),
                     str(hist.get("p95", 0)), str(hist.get("p99", 0)),
                     str(hist.get("max", 0)), mean])
    if rows:
        print_table(["histogram", "count", "min", "p50", "p90", "p95", "p99",
                     "max", "mean"], rows)

    caches = {}
    for name, value in counters.items():
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "cache" and \
                parts[2] in ("hits_total", "misses_total"):
            caches.setdefault(parts[1], {})[parts[2]] = value
    rows = []
    for name in sorted(caches):
        hits = caches[name].get("hits_total", 0)
        misses = caches[name].get("misses_total", 0)
        total = hits + misses
        rate = f"{100.0 * hits / total:.1f}%" if total else "-"
        rows.append([name, str(hits), str(misses), rate])
    if rows:
        print("  cache hit rates:")
        print_table(["cache", "hits", "misses", "hit rate"], rows)


def show_serve(document):
    """Render an smtu-serve-v1 report (smtu_serve --json, docs/SERVING.md):
    the virtual-time latency percentile table, the dedup/result-cache
    rollup, shed count, and the host wall-clock summary."""
    if not (isinstance(document, dict) and
            document.get("schema") == "smtu-serve-v1" and
            isinstance(document.get("virtual"), dict)):
        fail("no serve report (expected an smtu-serve-v1 document from "
             "smtu_serve --json)")
    virt = document["virtual"]
    trace = document.get("trace", {})
    options = document.get("options", {})

    print(f"== serve report (docs/SERVING.md): {trace.get('requests', '?')} "
          f"requests, set={trace.get('set', '?')} "
          f"scale={trace.get('scale', '?')} "
          f"arrival={trace.get('arrival_mode', '?')} "
          f"zipf={trace.get('zipf_skew', '?')} ==\n")

    rows = []
    for metric in ("queue", "service", "total"):
        rows.append([metric] +
                    [str(virt.get(f"{metric}_{point}_vus", 0))
                     for point in ("min", "p50", "p90", "p95", "p99", "max")] +
                    [f"{virt.get(f'{metric}_mean_vus', 0.0):.1f}"])
    print("  virtual-time latency (vus; deterministic, gated by "
          "bench_diff.py):")
    print_table(["latency", "min", "p50", "p90", "p95", "p99", "max", "mean"],
                rows)

    admitted = virt.get("admitted_requests", 0)
    shed = virt.get("shed_requests", 0)
    offered = admitted + shed

    def share(count):
        return f"{100.0 * count / offered:.1f}%" if offered else "-"

    rows = [[name, str(virt.get(key, 0)), share(virt.get(key, 0))]
            for name, key in (("simulated (fresh)", "simulated_requests"),
                              ("coalesced (in-flight dedup)",
                               "coalesced_requests"),
                              ("warm (result cache)", "warm_requests"),
                              ("shed (queue full)", "shed_requests"))]
    print(f"  outcomes over {offered} requests "
          f"(queue depth {options.get('queue_depth', '?')}, "
          f"{options.get('virtual_workers', '?')} virtual workers):")
    print_table(["outcome", "requests", "share"], rows)

    sim_cycles = virt.get("sim_cycles", 0)
    offered_cycles = virt.get("offered_cycles", 0)
    dedup = f"{offered_cycles / sim_cycles:.2f}x" if sim_cycles else "-"
    rows = [
        ["distinct simulations", str(virt.get("distinct_sims", 0))],
        ["simulated cycles", str(sim_cycles)],
        ["offered cycles (dedup-less)", str(offered_cycles)],
        ["cycle dedup factor", dedup],
        ["max queue depth", str(virt.get("max_queue_depth", 0))],
        ["makespan (vus)", str(virt.get("makespan_vus", 0))],
    ]
    print_table(["rollup", "value"], rows)

    host = document.get("host")
    if isinstance(host, dict):
        print(f"  host: {host.get('simulations', '?')} simulations, "
              f"{host.get('req_per_sec', 0.0):.0f} req/s over "
              f"{host.get('wall_us', 0.0) / 1000.0:.1f} ms wall "
              f"(jobs={host.get('jobs', '?')}; wall clock, never gated)\n")


def diff_numeric(name, old, new, rows):
    if old == new:
        return
    delta = new - old
    relative = f"{delta / old:+.1%}" if old else "n/a"
    rows.append((abs(delta), [name, str(old), str(new), f"{delta:+d}", relative]))


def diff_profiles(label, old, new, top):
    title = f"profile diff {label}".strip()
    print(f"== {title}: {old['cycles']} -> {new['cycles']} cycles "
          f"({new['cycles'] - old['cycles']:+d}) ==\n")

    rows = []
    for name in set(old["buckets"]) | set(new["buckets"]):
        diff_numeric(name, old["buckets"].get(name, 0),
                     new["buckets"].get(name, 0), rows)
    for side_old, side_new, prefix in ((old, new, "region "),):
        old_regions = {r["name"]: r for r in side_old.get("regions", [])}
        new_regions = {r["name"]: r for r in side_new.get("regions", [])}
        for name in set(old_regions) | set(new_regions):
            def total(regions):
                region = regions.get(name)
                return region["busy_cycles"] + region["stall_cycles"] if region else 0
            diff_numeric(prefix + name, total(old_regions), total(new_regions), rows)
    if rows:
        rows.sort(key=lambda entry: -entry[0])
        print_table(["bucket", "old", "new", "delta", "rel"],
                    [row for _, row in rows])
    else:
        print("  buckets and regions identical\n")

    def line_totals(profile):
        return {(entry["line"], entry["text"]):
                entry["busy_cycles"] + entry["stall_cycles"]
                for entry in profile.get("lines", [])}
    old_lines, new_lines = line_totals(old), line_totals(new)
    rows = []
    for key in set(old_lines) | set(new_lines):
        before, after = old_lines.get(key, 0), new_lines.get(key, 0)
        if before != after:
            rows.append((abs(after - before),
                         [f"L{key[0]}", str(before), str(after),
                          f"{after - before:+d}", key[1]]))
    if rows:
        rows.sort(key=lambda entry: -entry[0])
        print(f"  top {min(top, len(rows))} line movers:")
        print_table(["line", "old", "new", "delta", "text"],
                    [row for _, row in rows[:top]])
    else:
        print("  per-line attribution identical\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    show = sub.add_parser("show", help="print one profile as text tables")
    show.add_argument("profile", nargs="?", default=None,
                      help="profile or bench/repro JSON file (optional when "
                           "--host is given)")
    diff = sub.add_parser("diff", help="compare two profiles of one program")
    diff.add_argument("old", help="baseline JSON file")
    diff.add_argument("new", help="candidate JSON file")
    for command in (show, diff):
        command.add_argument("--top", type=int, default=10,
                             help="how many hottest lines to print (default 10)")
        command.add_argument("--matrix", default=None,
                             help="matrix name inside a bench/repro report")
        command.add_argument("--kernel", default=None,
                             help="kernel side: hism|crs in a bench/repro "
                                  "report, hism_sharded|crs_parallel in a "
                                  "scaling report")
    show.add_argument("--per-core", action="store_true",
                      help="with an smtu-scaling-v1 report: add a per-core "
                           "table to each rollup")
    show.add_argument("--host", default=None, metavar="INTERP_JSON",
                      help="smtu-hostmicro-v1 file (micro_host --interp-json):"
                           " print its dispatch-throughput records after the "
                           "simulated-cycle rollups (or alone)")
    show.add_argument("--telemetry", default=None, metavar="TELEMETRY_JSON",
                      help="smtu-telemetry-v1 file (--telemetry-json on any "
                           "bench binary / vsim_run) or a --telemetry report: "
                           "print host metric tables and the cache hit-rate "
                           "rollup (docs/TELEMETRY.md)")
    show.add_argument("--serve", default=None, metavar="SERVE_JSON",
                      help="smtu-serve-v1 file (smtu_serve --json): print the "
                           "virtual-time latency percentiles, dedup/result-"
                           "cache rollup, and shed count (docs/SERVING.md)")
    args = parser.parse_args()

    if args.command == "show":
        if args.profile is None and args.host is None and \
                args.telemetry is None and args.serve is None:
            fail("show needs a profile file, --host=INTERP_JSON, "
                 "--telemetry=TELEMETRY_JSON, and/or --serve=SERVE_JSON")
        if args.profile is not None:
            document = load(args.profile)
            if document.get("schema") == "smtu-scaling-v1":
                show_scaling(document, args.matrix, args.kernel, args.per_core,
                             args.top)
            else:
                for label, profile in extract_profiles(document,
                                                       args.matrix,
                                                       args.kernel):
                    show_profile(label, profile, args.top)
        if args.host is not None:
            show_host(load(args.host))
        if args.telemetry is not None:
            show_telemetry(load(args.telemetry))
        if args.serve is not None:
            show_serve(load(args.serve))
        return 0

    old = extract_profiles(load(args.old), args.matrix, args.kernel)
    new = extract_profiles(load(args.new), args.matrix, args.kernel)
    new_by_label = dict(new)
    for label, old_profile in old:
        if label not in new_by_label:
            fail(f"profile '{label}' missing from {args.new}")
        diff_profiles(label, old_profile, new_by_label[label], args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
