#!/usr/bin/env python3
"""Assert that reproduce_all is deterministic across --jobs values.

Usage:
    tools/check_repro_determinism.py PATH/TO/reproduce_all [--scale=0.02]
                                     [--jobs A B ...] [--profile]
                                     [--sim-cache] [--telemetry]

Runs the binary once per jobs value (default: 1 and 4) and asserts the
smtu-repro-v1 JSON artifacts are identical after stripping the host-timing
keys (any key containing "wall_ms", plus the "harness", "host", and
"telemetry" sections). Everything else — cycle counts, speedups,
utilization grids, full RunStats — must match exactly; a single differing
leaf fails the check.

--profile additionally passes --profile to every run, so each per-matrix
record carries a full smtu-profile-v1 section (cycle attribution, stall
taxonomy, per-line counters — docs/PROFILING.md) that is held to the same
bit-identical standard.

--sim-cache additionally runs the binary twice more with a shared
--sim-cache directory (a cold run populating it, then a warm run replaying
from it) and holds both artifacts to the same standard: caching must not
change a single simulated number (HACKING.md "Host performance").

--telemetry additionally runs the binary once more with host telemetry
collection on (docs/TELEMETRY.md) and asserts the artifact is bit-identical
to the telemetry-off reference after the strip — i.e. instrumentation only
*adds* the skipped "telemetry" section and never perturbs a simulated
metric (threshold 0, in bench_diff terms).

--serve SMTU_SERVE TRACE additionally replays the given smtu-trace-v1 file
through the serving driver once per jobs value and holds the smtu-serve-v1
reports to the same standard: everything outside the "host"/"telemetry"
sections — the whole "virtual" section, every _vus latency, every
scheduler counter — must be bit-identical across -j values
(docs/SERVING.md determinism contract).

Exit status: 0 identical, 1 mismatch, 2 usage/run failure.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def strip_timing(value):
    """Recursively drop nondeterministic host-timing keys."""
    if isinstance(value, dict):
        return {
            key: strip_timing(child)
            for key, child in value.items()
            if key not in ("harness", "host", "telemetry")
            and "wall_ms" not in key and "wall_us" not in key
            and "per_sec" not in key
        }
    if isinstance(value, list):
        return [strip_timing(child) for child in value]
    return value


def run_once(binary, scale, jobs, tmp, profile=False, sim_cache=None, tag="",
             telemetry=False):
    report = os.path.join(tmp, f"report_j{jobs}{tag}.md")
    artifact = os.path.join(tmp, f"repro_j{jobs}{tag}.json")
    command = [binary, f"--scale={scale}", f"--jobs={jobs}",
               f"--out={report}", f"--json={artifact}"]
    if profile:
        command.append("--profile")
    if sim_cache:
        command.append(f"--sim-cache={sim_cache}")
    if telemetry:
        command.append("--telemetry")
    result = subprocess.run(command, capture_output=True, text=True, check=False)
    if result.returncode != 0:
        print(f"check_repro_determinism: {' '.join(command)} failed "
              f"(exit {result.returncode}):\n{result.stderr}", file=sys.stderr)
        sys.exit(2)
    with open(artifact, "r", encoding="utf-8") as handle:
        return json.load(handle)


def run_serve(binary, trace, jobs, tmp):
    artifact = os.path.join(tmp, f"serve_j{jobs}.json")
    command = [binary, f"--replay={trace}", f"--jobs={jobs}",
               f"--json={artifact}"]
    result = subprocess.run(command, capture_output=True, text=True, check=False)
    if result.returncode != 0:
        print(f"check_repro_determinism: {' '.join(command)} failed "
              f"(exit {result.returncode}):\n{result.stderr}", file=sys.stderr)
        sys.exit(2)
    with open(artifact, "r", encoding="utf-8") as handle:
        return json.load(handle)


def first_difference(a, b, path=""):
    """Dotted path of the first differing leaf, or None."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{path}.{key} (missing on one side)"
            found = first_difference(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{path} (length {len(a)} vs {len(b)})"
        for index, (x, y) in enumerate(zip(a, b)):
            found = first_difference(x, y, f"{path}[{index}]")
            if found:
                return found
        return None
    return None if a == b else f"{path} ({a!r} vs {b!r})"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("binary", help="path to the reproduce_all binary")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 4])
    parser.add_argument("--profile", action="store_true",
                        help="run with --profile and hold the per-matrix "
                             "profile sections to the same determinism bar")
    parser.add_argument("--sim-cache", action="store_true",
                        help="also run cold+warm with a shared --sim-cache "
                             "directory and assert both artifacts identical "
                             "to the uncached reference")
    parser.add_argument("--telemetry", action="store_true",
                        help="also run with --telemetry and assert the "
                             "artifact identical to the telemetry-off "
                             "reference (instrumentation must not perturb "
                             "any simulated metric)")
    parser.add_argument("--serve", nargs=2, metavar=("SMTU_SERVE", "TRACE"),
                        help="also replay TRACE through the smtu_serve binary "
                             "once per jobs value and assert the smtu-serve-v1 "
                             "reports' deterministic sections are identical")
    args = parser.parse_args()

    if len(args.jobs) < 2:
        print("check_repro_determinism: need at least two --jobs values",
              file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        docs = {jobs: run_once(args.binary, args.scale, jobs, tmp, args.profile)
                for jobs in args.jobs}
        cached_docs = {}
        if args.sim_cache:
            cache_dir = os.path.join(tmp, "simcache")
            for tag in ("cold", "warm"):
                cached_docs[tag] = run_once(args.binary, args.scale, args.jobs[0],
                                            tmp, args.profile, cache_dir,
                                            f"_{tag}")
        telemetry_doc = None
        if args.telemetry:
            telemetry_doc = run_once(args.binary, args.scale, args.jobs[0], tmp,
                                     args.profile, tag="_telemetry",
                                     telemetry=True)
        serve_docs = {}
        if args.serve:
            serve_binary, serve_trace = args.serve
            serve_docs = {jobs: run_serve(serve_binary, serve_trace, jobs, tmp)
                          for jobs in args.jobs}

    reference_jobs = args.jobs[0]
    reference = strip_timing(docs[reference_jobs])
    for jobs in args.jobs[1:]:
        candidate = strip_timing(docs[jobs])
        difference = first_difference(reference, candidate)
        if difference:
            print(f"check_repro_determinism: -j{reference_jobs} vs -j{jobs} "
                  f"differ at {difference}", file=sys.stderr)
            return 1
        print(f"check_repro_determinism: -j{jobs} identical to "
              f"-j{reference_jobs} (modulo wall_ms)")
    for tag, doc in cached_docs.items():
        difference = first_difference(reference, strip_timing(doc))
        if difference:
            print(f"check_repro_determinism: uncached vs --sim-cache {tag} run "
                  f"differ at {difference}", file=sys.stderr)
            return 1
        print(f"check_repro_determinism: --sim-cache {tag} run identical to "
              f"uncached -j{reference_jobs} (modulo wall_ms/host)")
    if telemetry_doc is not None:
        if "telemetry" not in telemetry_doc:
            print("check_repro_determinism: --telemetry run is missing its "
                  "\"telemetry\" section", file=sys.stderr)
            return 1
        difference = first_difference(reference, strip_timing(telemetry_doc))
        if difference:
            print(f"check_repro_determinism: telemetry-off vs telemetry-on "
                  f"runs differ at {difference}", file=sys.stderr)
            return 1
        print(f"check_repro_determinism: --telemetry run identical to "
              f"telemetry-off -j{reference_jobs} (modulo wall_ms/host/telemetry)")
    if serve_docs:
        serve_reference = strip_timing(serve_docs[reference_jobs])
        for jobs in args.jobs[1:]:
            difference = first_difference(serve_reference,
                                          strip_timing(serve_docs[jobs]))
            if difference:
                print(f"check_repro_determinism: smtu_serve -j{reference_jobs} "
                      f"vs -j{jobs} differ at {difference}", file=sys.stderr)
                return 1
            print(f"check_repro_determinism: smtu_serve -j{jobs} report "
                  f"identical to -j{reference_jobs} (modulo host/telemetry)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
